#include "sim/abtest.h"

#include <cstdio>

namespace tencentrec::sim {

AbTest::AbTest(World* world, RecommenderArm* original,
               RecommenderArm* tencentrec, AbTestOptions options)
    : world_(world),
      original_(original),
      tencentrec_(tencentrec),
      options_(std::move(options)),
      click_model_(options_.click),
      rng_(options_.seed) {}

void AbTest::ServeImpression(SimUser& user, EventTime now, DayResult* day) {
  RecommenderArm* arm = ArmOf(user.id);
  DayMetrics* metrics = MetricsOf(user.id, day);

  core::Recommendations list;
  const SimItem* context = nullptr;
  switch (options_.mode) {
    case ServingMode::kHomeFeed:
      list = arm->Recommend(user.id, user.demographics,
                            options_.rec_list_size, now);
      break;
    case ServingMode::kContext: {
      // The user is looking at a commodity; the position shows related
      // items admitted by the position's filter.
      context = world_->SampleBrowseItem(user, options_.organic_focus_ratio,
                                         now, rng_);
      if (context == nullptr) return;
      auto filter = [this, context](core::ItemId id) {
        const SimItem* cand = world_->item(id);
        if (cand == nullptr || cand->expired || cand->id == context->id) {
          return false;
        }
        return !options_.position_filter ||
               options_.position_filter(*context, *cand);
      };
      list = arm->RecommendForContext(user.id, user.demographics, context->id,
                                      filter, options_.rec_list_size, now);
      break;
    }
    case ServingMode::kAdRanking: {
      // Sample a candidate ad pool from the live catalog.
      std::vector<core::ItemId> candidates;
      for (int i = 0; i < options_.ad_candidates; ++i) {
        const SimItem* ad = world_->SampleBrowseItem(
            user, /*focus_ratio=*/0.0, now, rng_);
        if (ad != nullptr) candidates.push_back(ad->id);
      }
      list = arm->RankCandidates(candidates, user.demographics,
                                 options_.rec_list_size, now);
      break;
    }
  }
  if (list.empty()) return;

  auto& user_consumed = consumed_[user.id];
  metrics->active_users.insert(user.id);
  for (size_t pos = 0; pos < list.size(); ++pos) {
    const SimItem* item = world_->item(list[pos].item);
    if (item == nullptr || item->expired) continue;
    ++metrics->shown;

    if (options_.emit_impressions) {
      core::UserAction imp;
      imp.user = user.id;
      imp.item = item->id;
      imp.action = core::ActionType::kImpression;
      imp.timestamp = now;
      imp.demographics = user.demographics;
      Observe(imp);
    }

    const bool already = user_consumed.count(item->id) > 0;
    if (!click_model_.Clicks(*world_, user, *item, pos, now, already, rng_)) {
      continue;
    }
    ++metrics->clicks;
    user_consumed.insert(item->id);

    core::UserAction click;
    click.user = user.id;
    click.item = item->id;
    click.action = core::ActionType::kClick;
    click.timestamp = now;
    click.demographics = user.demographics;
    Observe(click);

    if (options_.emit_reads) {
      ++metrics->reads;
      core::UserAction read = click;
      read.action = core::ActionType::kRead;
      read.timestamp = now + Seconds(30);
      Observe(read);
    }
    if (options_.purchase_prob > 0.0 &&
        rng_.Bernoulli(options_.purchase_prob)) {
      core::UserAction purchase = click;
      purchase.action = core::ActionType::kPurchase;
      purchase.timestamp = now + Minutes(5);
      Observe(purchase);
    }
  }
}

AbResult AbTest::Run() {
  AbResult result;

  // Register the initial catalog with both arms (CB needs content).
  for (const auto& item : world_->items()) {
    if (item.expired) continue;
    original_->OnNewItem(item);
    tencentrec_->OnNewItem(item);
  }

  const int total_days = options_.days + options_.warmup_days;
  for (int day = 0; day < total_days; ++day) {
    const bool recording = day >= options_.warmup_days;
    const EventTime day_start = Days(day);

    if (day > 0) {
      for (const SimItem* fresh : world_->AdvanceDay(day_start)) {
        original_->OnNewItem(*fresh);
        tencentrec_->OnNewItem(*fresh);
      }
    }

    DayResult day_result;
    day_result.day = day - options_.warmup_days + 1;

    for (int s = 0; s < options_.sessions_per_day; ++s) {
      // Sessions spread through the day in order (streams are in-order).
      const EventTime now =
          day_start + (kMicrosPerDay * s) / options_.sessions_per_day +
          static_cast<EventTime>(rng_.Uniform(
              static_cast<uint64_t>(kMicrosPerDay /
                                    options_.sessions_per_day)));
      SimUser& user = world_->SampleUser(rng_);
      world_->BeginSession(user, rng_);

      // Organic browsing: both arms learn from every user's behaviour.
      const int browses = static_cast<int>(
          rng_.UniformInt(options_.min_browses, options_.max_browses));
      auto& user_consumed = consumed_[user.id];
      for (int b = 0; b < browses; ++b) {
        const SimItem* item = world_->SampleBrowseItem(
            user, options_.organic_focus_ratio, now, rng_);
        if (item == nullptr) continue;
        const EventTime ts = now + Seconds(20 * b);

        core::UserAction browse;
        browse.user = user.id;
        browse.item = item->id;
        browse.action = core::ActionType::kBrowse;
        browse.timestamp = ts;
        browse.demographics = user.demographics;
        Observe(browse);

        // Organic engagement (independent of either recommender).
        const double p =
            options_.organic_click_scale *
            click_model_.ClickProbability(*world_, user, *item, 0, ts,
                                          user_consumed.count(item->id) > 0);
        if (rng_.Bernoulli(std::min(0.9, p * 3.0))) {
          user_consumed.insert(item->id);
          core::UserAction click = browse;
          click.action = core::ActionType::kClick;
          click.timestamp = ts + Seconds(5);
          Observe(click);
          if (options_.emit_reads) {
            core::UserAction read = click;
            read.action = core::ActionType::kRead;
            read.timestamp = ts + Seconds(40);
            Observe(read);
          }
          if (options_.purchase_prob > 0.0 &&
              rng_.Bernoulli(options_.purchase_prob)) {
            core::UserAction purchase = click;
            purchase.action = core::ActionType::kPurchase;
            purchase.timestamp = ts + Minutes(3);
            Observe(purchase);
          }
        }
      }

      if (rng_.Bernoulli(options_.rec_event_prob)) {
        ServeImpression(user, now + Minutes(2), &day_result);
      }
    }

    if (recording) {
      result.improvement.Add(day_result.ImprovementPct());
      result.days.push_back(std::move(day_result));
    }
  }
  return result;
}

void PrintAbResult(const AbResult& result, bool show_reads) {
  std::printf("%-12s %10s %12s %12s %9s", "scenario", "day", "Original",
              "TencentRec", "impr%%");
  if (show_reads) std::printf(" %12s %12s", "reads/u O", "reads/u T");
  std::printf("\n");
  for (const auto& day : result.days) {
    std::printf("%-12s %10d %11.2f%% %11.2f%% %8.2f%%",
                result.scenario.c_str(), day.day, day.original.Ctr() * 100.0,
                day.tencentrec.Ctr() * 100.0, day.ImprovementPct());
    if (show_reads) {
      std::printf(" %12.2f %12.2f", day.original.ReadsPerUser(),
                  day.tencentrec.ReadsPerUser());
    }
    std::printf("\n");
  }
  std::printf("%-12s   summary improvement avg=%.2f%% min=%.2f%% max=%.2f%%\n",
              result.scenario.c_str(), result.improvement.mean(),
              result.improvement.min(), result.improvement.max());
}

}  // namespace tencentrec::sim
