#ifndef TENCENTREC_SIM_ARMS_H_
#define TENCENTREC_SIM_ARMS_H_

#include <functional>
#include <memory>
#include <string>

#include "core/content.h"
#include "core/ctr.h"
#include "core/demographic.h"
#include "core/itemcf/basic_cf.h"
#include "core/recommender.h"
#include "sim/world.h"

namespace tencentrec::sim {

/// One side of a production A/B test (§6.2): a recommender that observes
/// the shared action stream and serves a cohort of users. TencentRec arms
/// update on every event; "Original" arms snapshot their model on a period
/// (offline / semi-real-time computation, as the paper describes the
/// incumbents).
class RecommenderArm {
 public:
  virtual ~RecommenderArm() = default;

  virtual std::string name() const = 0;

  /// Training input: every arm sees the full action stream (one pipeline,
  /// two models — as in the paper's deployments).
  virtual void ObserveAction(const core::UserAction& action) = 0;

  /// New item published (news churn); CB arms register content here.
  virtual void OnNewItem(const SimItem& item) { (void)item; }

  /// Home-feed style recommendation.
  virtual core::Recommendations Recommend(core::UserId user,
                                          const core::Demographics& d,
                                          size_t n, EventTime now) = 0;

  /// Context-item position ("users who viewed this commodity...", Fig. 12):
  /// recommend related to `context`, restricted by `filter`.
  virtual core::Recommendations RecommendForContext(
      core::UserId user, const core::Demographics& d, core::ItemId context,
      const std::function<bool(core::ItemId)>& filter, size_t n,
      EventTime now) {
    (void)context;
    (void)filter;
    return Recommend(user, d, n, now);
  }

  /// Ad ranking: order `candidates` by predicted CTR for the situation.
  virtual core::Recommendations RankCandidates(
      const std::vector<core::ItemId>& candidates, const core::Demographics& d,
      size_t n, EventTime now) {
    (void)d;
    (void)now;
    core::Recommendations out;
    for (size_t i = 0; i < candidates.size() && i < n; ++i) {
      out.push_back({candidates[i], 0.0});
    }
    return out;
  }
};

/// TencentRec's CF stack: practical incremental item-based CF (windowed
/// counts, recent-k personalized filtering) + DB complement.
class StreamingCfArm : public RecommenderArm {
 public:
  explicit StreamingCfArm(core::HybridRecommender::Options options)
      : hybrid_(options) {}

  std::string name() const override { return "TencentRec-CF"; }
  void ObserveAction(const core::UserAction& action) override {
    hybrid_.ProcessAction(action);
  }
  core::Recommendations Recommend(core::UserId user,
                                  const core::Demographics& d, size_t n,
                                  EventTime now) override;
  core::Recommendations RecommendForContext(
      core::UserId user, const core::Demographics& d, core::ItemId context,
      const std::function<bool(core::ItemId)>& filter, size_t n,
      EventTime now) override;

  const core::HybridRecommender& hybrid() const { return hybrid_; }

 private:
  core::HybridRecommender hybrid_;
};

/// The "Original" CF incumbent: batch item-based CF whose similarity table
/// (and popularity fallback) is recomputed only every `retrain_period` —
/// offline computation with filter conditions, "model updated once a day"
/// (§6.4).
class PeriodicCfArm : public RecommenderArm {
 public:
  PeriodicCfArm(core::ActionWeights weights, EventTime retrain_period,
                double support_shrinkage = 0.0,
                core::BasicItemCf::SimilarityMeasure measure =
                    core::BasicItemCf::SimilarityMeasure::kMinCoRating)
      : weights_(weights),
        retrain_period_(retrain_period),
        model_(measure, support_shrinkage),
        staging_popularity_() {}

  std::string name() const override { return "Original-CF"; }
  void ObserveAction(const core::UserAction& action) override;
  core::Recommendations Recommend(core::UserId user,
                                  const core::Demographics& d, size_t n,
                                  EventTime now) override;
  core::Recommendations RecommendForContext(
      core::UserId user, const core::Demographics& d, core::ItemId context,
      const std::function<bool(core::ItemId)>& filter, size_t n,
      EventTime now) override;

 private:
  struct SeenItem {
    double rating = 0.0;
    EventTime last = 0;
  };

  void MaybeRetrain(EventTime now);

  core::ActionWeights weights_;
  EventTime retrain_period_;
  EventTime last_retrain_ = -1;
  core::BasicItemCf model_;
  std::unordered_map<core::ItemId, double> staging_popularity_;
  core::Recommendations popularity_snapshot_;  ///< as of last retrain
  /// Live seen-sets (serving-side knowledge), LRU-capped so the nightly
  /// batch recompute stays tractable — batch pipelines cap history too.
  std::unordered_map<core::UserId, std::unordered_map<core::ItemId, SeenItem>>
      seen_;
  size_t per_user_cap_ = 60;
};

/// TencentRec's CB stack (news): real-time content profiles, instant new-
/// item availability, DB complement.
class StreamingCbArm : public RecommenderArm {
 public:
  StreamingCbArm(core::ContentBased::Options cb_options,
                 core::DemographicRecommender::Options db_options)
      : cb_(cb_options), db_(db_options) {}

  std::string name() const override { return "TencentRec-CB"; }
  void ObserveAction(const core::UserAction& action) override {
    cb_.ProcessAction(action);
    db_.ProcessAction(action);
  }
  void OnNewItem(const SimItem& item) override;
  core::Recommendations Recommend(core::UserId user,
                                  const core::Demographics& d, size_t n,
                                  EventTime now) override;

 private:
  core::ContentBased cb_;
  core::DemographicRecommender db_;
};

/// The "Original" CB incumbent (news): same algorithm, but the serving
/// model is a snapshot refreshed once per `refresh_period` (the paper's
/// "CB recommendation model is updated once an hour", §6.3) — so fresh
/// items and fresh interests are invisible until the next refresh.
class PeriodicCbArm : public RecommenderArm {
 public:
  PeriodicCbArm(core::ContentBased::Options cb_options,
                core::DemographicRecommender::Options db_options,
                EventTime refresh_period)
      : staging_(cb_options),
        serving_(cb_options),
        staging_db_(db_options),
        serving_db_(db_options),
        refresh_period_(refresh_period) {}

  std::string name() const override { return "Original-CB"; }
  void ObserveAction(const core::UserAction& action) override;
  void OnNewItem(const SimItem& item) override;
  core::Recommendations Recommend(core::UserId user,
                                  const core::Demographics& d, size_t n,
                                  EventTime now) override;

 private:
  void MaybeRefresh(EventTime now);

  core::ContentBased staging_;
  core::ContentBased serving_;
  core::DemographicRecommender staging_db_;
  core::DemographicRecommender serving_db_;
  EventTime refresh_period_;
  EventTime last_refresh_ = -1;
};

/// TencentRec's situational CTR stack (QQ ads): sliding-window CTR counts
/// updated per event.
class StreamingCtrArm : public RecommenderArm {
 public:
  explicit StreamingCtrArm(core::SituationalCtr::Options options)
      : ctr_(options) {}

  std::string name() const override { return "TencentRec-CTR"; }
  void ObserveAction(const core::UserAction& action) override {
    ctr_.ProcessAction(action);
  }
  core::Recommendations Recommend(core::UserId user,
                                  const core::Demographics& d, size_t n,
                                  EventTime now) override {
    (void)user;
    (void)d;
    (void)n;
    (void)now;
    return {};
  }
  core::Recommendations RankCandidates(
      const std::vector<core::ItemId>& candidates, const core::Demographics& d,
      size_t n, EventTime now) override {
    (void)now;
    return ctr_.RankByCtr(candidates, d, n);
  }

 private:
  core::SituationalCtr ctr_;
};

/// The "Original" CTR incumbent: identical estimator, but serving from a
/// snapshot refreshed every `refresh_period` — blind to intra-period CTR
/// shifts (short ad life cycles, §1).
class PeriodicCtrArm : public RecommenderArm {
 public:
  PeriodicCtrArm(core::SituationalCtr::Options options,
                 EventTime refresh_period)
      : staging_(options), serving_(options), refresh_period_(refresh_period) {}

  std::string name() const override { return "Original-CTR"; }
  void ObserveAction(const core::UserAction& action) override;
  core::Recommendations Recommend(core::UserId user,
                                  const core::Demographics& d, size_t n,
                                  EventTime now) override {
    (void)user;
    (void)d;
    (void)n;
    (void)now;
    return {};
  }
  core::Recommendations RankCandidates(
      const std::vector<core::ItemId>& candidates, const core::Demographics& d,
      size_t n, EventTime now) override;

 private:
  void MaybeRefresh(EventTime now);

  core::SituationalCtr staging_;
  core::SituationalCtr serving_;
  EventTime refresh_period_;
  EventTime last_refresh_ = -1;
};

}  // namespace tencentrec::sim

#endif  // TENCENTREC_SIM_ARMS_H_
