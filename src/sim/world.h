#ifndef TENCENTREC_SIM_WORLD_H_
#define TENCENTREC_SIM_WORLD_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/action.h"

namespace tencentrec::sim {

/// Parameters of the synthetic user/item universe. The defaults model the
/// behavioural structure the paper's evaluation depends on, not its raw
/// scale: Zipf popularity (hot items), demographic taste clusters (DB
/// signal), fast per-session interest focus (what real-time recommendation
/// captures), slow daily drift (what periodic retraining chases), and item
/// churn (news).
struct WorldOptions {
  int num_users = 2000;
  int num_items = 1500;
  int num_genres = 20;
  uint64_t seed = 42;

  double item_zipf = 0.9;  ///< popularity skew within a genre
  double user_zipf = 0.6;  ///< user activity skew

  /// Probability a user's session opens with a *new* focus genre (sampled
  /// from their preferences) rather than keeping the previous one. High =
  /// fast-changing real-time interests.
  double focus_switch_prob = 0.35;

  /// Daily preference drift: fraction of preference mass that random-walks
  /// each day.
  double drift_rate = 0.05;

  /// How strongly the user's demographic group biases their genre taste
  /// (0 = none, 1 = taste fully determined by group).
  double group_bias = 0.5;

  /// News churn: new items per day as a fraction of the catalog (0 = static
  /// catalog), and item lifetime after which an item expires (0 = forever).
  double daily_new_item_frac = 0.0;
  EventTime item_lifetime = 0;

  /// E-commerce: number of price bands (0 = items carry no price).
  int num_price_bands = 0;
};

struct SimItem {
  core::ItemId id = 0;
  int genre = 0;
  double quality = 1.0;     ///< intrinsic appeal in [0.5, 1.5]
  int popularity_rank = 0;  ///< rank within its genre (Zipf sampling)
  EventTime published = 0;
  int price_band = 0;
  bool expired = false;
};

struct SimUser {
  core::UserId id = 0;
  core::Demographics demographics;
  std::vector<double> preferences;  ///< over genres, sums to 1
  double activity = 1.0;
  int focus_genre = 0;
};

/// The evolving universe: users with drifting preferences and per-session
/// focus, items with genre/quality/churn. Deterministic given the seed.
class World {
 public:
  explicit World(WorldOptions options);

  const WorldOptions& options() const { return options_; }
  const std::vector<SimUser>& users() const { return users_; }
  const std::vector<SimItem>& items() const { return items_; }
  const SimItem* item(core::ItemId id) const;
  const SimUser& user(core::UserId id) const {
    return users_[static_cast<size_t>(id - 1)];
  }

  /// Steady-state appeal of `item` to `user` at `now`: preference x quality
  /// x freshness (freshness only when item_lifetime is set).
  double Affinity(const SimUser& user, const SimItem& item,
                  EventTime now) const;

  /// Extra multiplier when the item matches the user's current focus.
  bool MatchesFocus(const SimUser& user, const SimItem& item) const {
    return item.genre == user.focus_genre;
  }

  /// Samples an active user (Zipf by activity).
  SimUser& SampleUser(Rng& rng);

  /// Begins a session for `user`: possibly switches their focus genre.
  void BeginSession(SimUser& user, Rng& rng);

  /// Samples an item for organic browsing: from the user's focus genre with
  /// probability `focus_ratio`, else from the user's preference-weighted
  /// genres; Zipf popularity within genre. Returns nullptr only if the
  /// catalog is empty.
  const SimItem* SampleBrowseItem(const SimUser& user, double focus_ratio,
                                  EventTime now, Rng& rng);

  /// Daily dynamics: drifts preferences, expires old items, publishes new
  /// ones. Returns the freshly published items (for CB registration).
  std::vector<const SimItem*> AdvanceDay(EventTime day_start);

  /// Live (unexpired) items in a genre, popularity-ranked.
  const std::vector<core::ItemId>& GenreItems(int genre) const {
    return genre_items_[static_cast<size_t>(genre)];
  }

  /// All live item ids.
  std::vector<core::ItemId> LiveItems() const;

 private:
  void AddItem(int genre, EventTime published);
  int SampleGenre(const SimUser& user, Rng& rng) const;

  WorldOptions options_;
  Rng rng_;
  std::vector<SimUser> users_;
  std::vector<SimItem> items_;                       ///< by id - 1
  std::vector<std::vector<core::ItemId>> genre_items_;  ///< live, by rank
  std::unique_ptr<ZipfSampler> user_sampler_;
  core::ItemId next_item_id_ = 1;
};

}  // namespace tencentrec::sim

#endif  // TENCENTREC_SIM_WORLD_H_
