#include "engine/offline.h"

#include <atomic>

#include "tdaccess/consumer.h"
#include "topo/action_codec.h"

namespace tencentrec::engine {

namespace {
std::atomic<int64_t> g_last_actions{0};
}  // namespace

int64_t OfflineCfJob::last_actions_replayed() { return g_last_actions.load(); }

Result<core::BasicItemCf> OfflineCfJob::Run(tdaccess::Cluster* access,
                                            const Options& options) {
  tdaccess::Consumer consumer(access, options.topic, options.consumer_group,
                              "offline-job");
  TR_RETURN_IF_ERROR(consumer.Subscribe());
  TR_RETURN_IF_ERROR(consumer.SeekToBeginning());

  core::BasicItemCf model(options.measure, options.support_shrinkage);
  int64_t replayed = 0;
  while (true) {
    auto batch = consumer.Poll(options.poll_batch);
    if (!batch.ok()) return batch.status();
    if (batch->empty()) break;
    for (const auto& cm : *batch) {
      auto action = topo::DecodeActionPayload(cm.message.payload);
      if (!action.ok()) continue;  // skip malformed records
      const double w = options.weights.Weight(action->action);
      if (w <= 0.0) continue;
      if (w > model.RatingOf(action->user, action->item)) {
        model.SetRating(action->user, action->item, w);
      }
      ++replayed;
    }
  }
  model.ComputeSimilarities();
  g_last_actions.store(replayed);
  return model;
}

}  // namespace tencentrec::engine
