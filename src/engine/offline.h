#ifndef TENCENTREC_ENGINE_OFFLINE_H_
#define TENCENTREC_ENGINE_OFFLINE_H_

#include <string>

#include "core/itemcf/basic_cf.h"
#include "tdaccess/cluster.h"

namespace tencentrec::engine {

/// The offline computation platform of Fig. 9: TDAccess caches every
/// partition on disk precisely so that batch jobs can replay the full
/// history later (§3.2 — "the offline computation requiring the historical
/// data"). This job consumes a topic from offset 0 under its own consumer
/// group and builds a batch item-based CF model from scratch — the kind of
/// nightly model the paper's "original" recommenders served, and a handy
/// offline cross-check of the streaming state.
class OfflineCfJob {
 public:
  struct Options {
    std::string topic = "user_actions";
    std::string consumer_group = "offline-cf";
    core::ActionWeights weights;
    core::BasicItemCf::SimilarityMeasure measure =
        core::BasicItemCf::SimilarityMeasure::kMinCoRating;
    double support_shrinkage = 0.0;
    size_t poll_batch = 512;
  };

  /// Replays the topic's full history and returns the trained model
  /// (similarities already computed). The consumer group's offsets are NOT
  /// committed, so repeated runs always see the whole history.
  static Result<core::BasicItemCf> Run(tdaccess::Cluster* access,
                                       const Options& options);

  /// Actions consumed by the last Run() in this process (observability).
  static int64_t last_actions_replayed();
};

}  // namespace tencentrec::engine

#endif  // TENCENTREC_ENGINE_OFFLINE_H_
