#include "engine/tencentrec.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/profiled_mutex.h"
#include "common/trace.h"
#include "engine/monitor.h"
#include "obs/freshness.h"
#include "obs/profiler.h"
#include "tdstore/batch_writer.h"
#include "topo/action_codec.h"
#include "topo/blob_codec.h"
#include "topo/spouts.h"
#include "topo/topology_factory.h"

namespace tencentrec::engine {

TencentRec::TencentRec(Options options) : options_(std::move(options)) {}

// Out of line: ~StallWatchdog needs the complete type from engine/monitor.h,
// which this header cannot include (monitor.h includes tencentrec.h).
TencentRec::~TencentRec() {
  // Only stop the profiler if this engine's Init started it — a sibling
  // engine (or a test harness) that owns the profiler keeps it.
  if (profiler_started_) obs::Profiler::Instance().Stop();
  if (watchdog_ != nullptr) watchdog_->Stop();
  if (admin_ != nullptr) admin_->Stop();
  // Stop the sampler before slo_ dies: its post-sample hook evaluates the
  // SLO registry from the sampler thread.
  if (timeseries_ != nullptr) timeseries_->Stop();
}

Result<std::unique_ptr<TencentRec>> TencentRec::Create(Options options) {
  std::unique_ptr<TencentRec> engine(new TencentRec(std::move(options)));
  Status s = engine->Init();
  if (!s.ok()) return s;
  return engine;
}

Status TencentRec::Init() {
  auto store = tdstore::Cluster::Create(options_.store);
  if (!store.ok()) return store.status();
  store_ = std::move(store).value();
  barrier_seq_ = store_->recovered_barrier_id();

  access_ = std::make_unique<tdaccess::Cluster>(options_.access);
  TR_RETURN_IF_ERROR(
      access_->master().CreateTopic(options_.topic, options_.topic_partitions));
  producer_ = std::make_unique<tdaccess::Producer>(access_.get(),
                                                   options_.topic);

  app_ = std::make_unique<topo::AppContext>(store_.get(), options_.app);
  admin_client_ = std::make_unique<tdstore::Client>(store_.get());
  if (options_.app.enable_query_batching) {
    // One shared cache for every StoreQuery (the engine's own and any
    // per-thread ones callers build from query_cache()): sharing is what
    // turns N concurrent identical reads into one store round-trip.
    topo::QueryCache::Options qopts;
    qopts.capacity = options_.app.query_cache_capacity;
    qopts.ttl_micros = options_.app.query_cache_ttl_micros;
    query_cache_ = std::make_shared<topo::QueryCache>(std::move(qopts));
  }
  query_ = std::make_unique<topo::StoreQuery>(app_.get(), query_cache_);

  if (options_.mirror_parallel_cf) {
    core::ParallelItemCf::Options popts;
    popts.cf.weights = options_.app.weights;
    popts.cf.linked_time = options_.app.linked_time;
    popts.cf.top_k = options_.app.top_k;
    popts.cf.recent_k = options_.app.recent_k;
    popts.cf.session_length = options_.app.session_length;
    popts.cf.window_sessions = options_.app.window_sessions;
    popts.cf.enable_pruning = options_.app.enable_pruning;
    popts.cf.hoeffding_delta = options_.app.hoeffding_delta;
    popts.cf.use_flat_kernels = options_.app.use_flat_kernels;
    popts.user_shards = options_.mirror_user_shards;
    popts.pair_shards = options_.mirror_pair_shards;
    popts.metrics_scope = "parallel_cf." + options_.app.app;
    parallel_cf_ = std::make_unique<core::ParallelItemCf>(popts);
  }

  if (options_.trace_sample_every > 0) {
    SetTraceSampleEvery(options_.trace_sample_every);
  }

  if (options_.enable_watchdog) {
    StallWatchdog::Options wopts;
    wopts.period_ms = options_.watchdog_period_ms;
    wopts.health = &health_;
    watchdog_ = std::make_unique<StallWatchdog>(wopts);
    if (parallel_cf_ != nullptr) {
      core::ParallelItemCf* cf = parallel_cf_.get();
      watchdog_->Register({"parallel_cf.user-history",
                           [cf] { return cf->StageHeartbeat(false); },
                           [cf] { return cf->StageBacklog(false); }});
      watchdog_->Register({"parallel_cf.count+sim",
                           [cf] { return cf->StageHeartbeat(true); },
                           [cf] { return cf->StageBacklog(true); }});
    }
    watchdog_->Start();
  }

  if (options_.enable_timeseries || options_.enable_slo) {
    obs::TimeSeriesStore::Options topts;
    topts.sample_period_ms = options_.timeseries_sample_period_ms;
    topts.capacity = options_.timeseries_capacity;
    timeseries_ = std::make_unique<obs::TimeSeriesStore>(
        &MetricRegistry::Default(), topts);
    // Freshness lags and CPU shares are derived gauges: publish them at the
    // sample instant so every ring slot (and thus every SLO window) carries
    // them. The profiler publish is a no-op while no samples accrue.
    timeseries_->SetPreSampleHook([](uint64_t now) {
      obs::FreshnessTracker::Default().PublishGauges(&MetricRegistry::Default(),
                                                     now);
      obs::Profiler::Instance().PublishGauges();
    });
  }
  if (options_.enable_slo) {
    slo_ = std::make_unique<obs::SloRegistry>(timeseries_.get(), &health_);
    const uint64_t sw = options_.slo_short_window_micros;
    const uint64_t lw = options_.slo_long_window_micros;
    // Default objectives (DESIGN.md §12): latency, freshness, store error
    // budget, stall-freedom. Names key the health components ("slo.<name>").
    slo_->AddObjective({/*name=*/"e2s-p99",
                        obs::SloRegistry::Kind::kMaxValue,
                        /*metric=*/"topo." + options_.app.app +
                            ".*.event_to_store_us.p99",
                        /*denominator=*/"",
                        static_cast<double>(options_.slo_e2s_p99_micros), sw,
                        lw,
                        /*burn_factor=*/1.0, /*affects_readiness=*/false,
                        "interval p99 of event-to-store latency, worst bolt"});
    slo_->AddObjective({/*name=*/"freshness",
                        obs::SloRegistry::Kind::kMaxValue,
                        /*metric=*/"freshness.e2e.lag_us",
                        /*denominator=*/"",
                        static_cast<double>(options_.slo_freshness_lag_micros),
                        sw, lw,
                        /*burn_factor=*/1.0, /*affects_readiness=*/true,
                        "end-to-end watermark freshness lag"});
    slo_->AddObjective({/*name=*/"store-errors",
                        obs::SloRegistry::Kind::kMaxRatio,
                        /*metric=*/"tdstore.client.errors",
                        /*denominator=*/"tdstore.client.ops",
                        options_.slo_store_error_ratio, sw, lw,
                        /*burn_factor=*/1.0, /*affects_readiness=*/true,
                        "TDStore client op error budget"});
    slo_->AddObjective({/*name=*/"stall-free",
                        obs::SloRegistry::Kind::kMaxValue,
                        /*metric=*/"watchdog.stalled_components",
                        /*denominator=*/"",
                        /*threshold=*/0.5, sw, lw,
                        /*burn_factor=*/1.0, /*affects_readiness=*/true,
                        "no pipeline component stalled"});
    // Every fresh sample is judged immediately (sampler thread); tests call
    // SampleNow+EvaluateNow themselves for determinism.
    timeseries_->SetPostSampleHook(
        [this](uint64_t now) { slo_->EvaluateNow(now); });
  }
  if (timeseries_ != nullptr) timeseries_->Start();

  if (options_.enable_profiler) {
    obs::Profiler::Options popts;
    popts.hz = options_.profiler_hz;
    // May refuse (kill switch off, or another engine already profiling);
    // the /profile routes report the live state either way.
    profiler_started_ = obs::Profiler::Instance().Start(popts);
  }

  if (options_.enable_admin_server) {
    obs::AdminServer::Options aopts;
    aopts.bind_address = options_.admin_bind_address;
    aopts.port = options_.admin_port;
    admin_ = std::make_unique<obs::AdminServer>(aopts);
    // Handlers run on the accept thread; everything they touch is either
    // internally synchronized (registry, tracer, health) or a full
    // snapshot collection. Hitting /metrics mid-batch observes the
    // previous run's topology rows, which is the intended semantics.
    admin_->Route("/metrics", [this](const obs::AdminServer::Request&) {
      obs::AdminServer::Response resp;
      obs::FreshnessTracker::Default().PublishGauges(&MetricRegistry::Default(),
                                                     MonoMicros());
      auto snap = CollectMonitorSnapshot(this);
      if (!snap.ok()) {
        resp.status = 503;
        resp.body = snap.status().ToString() + "\n";
        return resp;
      }
      // The exposition carries exemplars and the # EOF trailer, so negotiate
      // OpenMetrics; classic Prometheus parsers accept the payload minus the
      // exemplar annotations.
      resp.content_type =
          "application/openmetrics-text; version=1.0.0; charset=utf-8";
      resp.body = ExportPrometheusText(*snap);
      return resp;
    });
    admin_->Route("/vars", [this](const obs::AdminServer::Request&) {
      obs::AdminServer::Response resp;
      // Freshness lags are computed at collection time so /vars always
      // carries current watermark gauges, sampler or not.
      obs::FreshnessTracker::Default().PublishGauges(&MetricRegistry::Default(),
                                                     MonoMicros());
      auto snap = CollectMonitorSnapshot(this);
      if (!snap.ok()) {
        resp.status = 503;
        resp.body = snap.status().ToString() + "\n";
        return resp;
      }
      resp.content_type = "application/json";
      resp.body = ExportJson(*snap);
      return resp;
    });
    admin_->Route("/healthz", [this](const obs::AdminServer::Request&) {
      obs::AdminServer::Response resp;
      resp.status = health_.Healthy() ? 200 : 503;
      resp.content_type = "application/json";
      resp.body = health_.Json();
      return resp;
    });
    admin_->Route("/readyz", [this](const obs::AdminServer::Request&) {
      obs::AdminServer::Response resp;
      const bool ready = health_.Ready();
      resp.status = ready ? 200 : 503;
      resp.content_type = "application/json";
      resp.body = ready ? "{\"ready\":true}" : "{\"ready\":false}";
      return resp;
    });
    admin_->Route("/timeseries", [this](const obs::AdminServer::Request& req) {
      obs::AdminServer::Response resp;
      resp.content_type = "application/json";
      if (timeseries_ == nullptr) {
        resp.status = 404;
        resp.body = "{\"error\":\"timeseries disabled\"}";
        return resp;
      }
      // ?metric=<series>&window=<seconds>; no metric lists series names.
      std::string metric;
      uint64_t window_micros = 0;
      size_t pos = req.query.find("metric=");
      if (pos != std::string::npos) {
        const size_t start = pos + 7;
        const size_t end = req.query.find('&', start);
        metric = req.query.substr(start, end == std::string::npos
                                             ? std::string::npos
                                             : end - start);
      }
      pos = req.query.find("window=");
      if (pos != std::string::npos) {
        window_micros = static_cast<uint64_t>(
                            std::strtoull(req.query.c_str() + pos + 7,
                                          nullptr, 10)) *
                        kMicrosPerSecond;
      }
      if (metric.empty()) {
        std::string body = "{\"series\":[";
        bool first = true;
        for (const auto& name : timeseries_->SeriesNames()) {
          if (!first) body += ',';
          first = false;
          body += '"' + name + '"';
        }
        body += "]}";
        resp.body = std::move(body);
        return resp;
      }
      resp.body = timeseries_->QueryJson(metric, window_micros);
      return resp;
    });
    admin_->Route("/slo", [this](const obs::AdminServer::Request&) {
      obs::AdminServer::Response resp;
      resp.content_type = "application/json";
      if (slo_ == nullptr) {
        resp.status = 404;
        resp.body = "{\"error\":\"slo disabled\"}";
        return resp;
      }
      resp.body = slo_->Json();
      return resp;
    });
    admin_->Route("/traces", [](const obs::AdminServer::Request& req) {
      obs::AdminServer::Response resp;
      resp.content_type = "application/json";
      const auto spans = Tracer::Default().Spans();
      // ?format=chrome emits the about:tracing / Perfetto event array.
      resp.body = req.query.find("format=chrome") != std::string::npos
                      ? ExportChromeTrace(spans)
                      : ExportTracesJson(spans);
      return resp;
    });
    // Profiling plane (DESIGN.md §13). /profile/cpu BLOCKS the accept
    // thread for the window (the plane is single-request by design), so
    // the other endpoints are unavailable while a profile is being taken;
    // seconds is clamped to 30.
    admin_->Route("/profile/cpu", [](const obs::AdminServer::Request& req) {
      obs::AdminServer::Response resp;
      obs::Profiler& prof = obs::Profiler::Instance();
      if (!prof.running()) {
        resp.status = 503;
        resp.content_type = "application/json";
        resp.body = "{\"error\":\"profiler not running\"}";
        return resp;
      }
      double seconds = 2.0;
      size_t pos = req.query.find("seconds=");
      if (pos != std::string::npos) {
        seconds = std::strtod(req.query.c_str() + pos + 8, nullptr);
      }
      if (!(seconds > 0.0)) seconds = 2.0;
      if (seconds > 30.0) seconds = 30.0;
      const bool json = req.query.find("format=json") != std::string::npos;
      const auto agg = prof.CollectWindow(seconds);
      if (json) {
        resp.content_type = "application/json";
        resp.body = obs::Profiler::Json(agg);
      } else {
        // Collapsed stacks: pipe straight into flamegraph.pl.
        resp.content_type = "text/plain";
        resp.body = obs::Profiler::Folded(agg);
      }
      return resp;
    });
    admin_->Route("/profile/contention",
                  [](const obs::AdminServer::Request&) {
                    obs::AdminServer::Response resp;
                    resp.content_type = "application/json";
                    resp.body = ContentionReportJson();
                    return resp;
                  });
    // Kill switch: GET reports state; ?set=0 stops and disables,
    // ?set=1 re-enables and restarts at the engine's configured rate.
    admin_->Route("/profile/enabled",
                  [this](const obs::AdminServer::Request& req) {
                    obs::AdminServer::Response resp;
                    resp.content_type = "application/json";
                    obs::Profiler& prof = obs::Profiler::Instance();
                    if (req.query.find("set=0") != std::string::npos) {
                      prof.SetEnabled(false);
                    } else if (req.query.find("set=1") !=
                               std::string::npos) {
                      prof.SetEnabled(true);
                      obs::Profiler::Options popts;
                      popts.hz = options_.profiler_hz;
                      profiler_started_ = prof.Start(popts);
                    }
                    char buf[96];
                    std::snprintf(buf, sizeof(buf),
                                  "{\"enabled\":%s,\"running\":%s,\"hz\":%d}",
                                  prof.Enabled() ? "true" : "false",
                                  prof.running() ? "true" : "false",
                                  prof.hz());
                    resp.body = buf;
                    return resp;
                  });
    TR_RETURN_IF_ERROR(admin_->Start());
  }

  health_.SetReady(true);
  return Status::OK();
}

Status TencentRec::RegisterItem(core::ItemId item,
                                const core::TagVector& tags,
                                EventTime published) {
  TR_RETURN_IF_ERROR(admin_client_->Put(app_->keys.ItemTags(item),
                                        topo::EncodeTagVector(tags)));
  TR_RETURN_IF_ERROR(
      admin_client_->PutInt64("im:" + options_.app.app + ":" +
                                  std::to_string(item),
                              published));
  // Maintain the inverted index (single-threaded admin path; read-modify-
  // write is safe here).
  for (const auto& [tag, w] : tags) {
    const std::string key = app_->keys.TagIndex(tag);
    std::vector<core::ItemId> items;
    auto blob = admin_client_->Get(key);
    if (blob.ok()) {
      auto decoded = topo::DecodeItemList(*blob);
      if (!decoded.ok()) return decoded.status();
      items = std::move(decoded).value();
    } else if (!blob.status().IsNotFound()) {
      return blob.status();
    }
    bool present = false;
    for (core::ItemId existing : items) {
      if (existing == item) {
        present = true;
        break;
      }
    }
    if (!present) {
      items.push_back(item);
      TR_RETURN_IF_ERROR(admin_client_->Put(key, topo::EncodeItemList(items)));
    }
    if (query_cache_ != nullptr) query_cache_->Invalidate(key);
  }
  // This admin write bypasses the query tier, so evict exactly the keys it
  // rewrote — a cached NotFound for a just-registered item must not outlive
  // the registration.
  if (query_cache_ != nullptr) {
    query_cache_->Invalidate(app_->keys.ItemTags(item));
    query_cache_->Invalidate("im:" + options_.app.app + ":" +
                             std::to_string(item));
  }
  return Status::OK();
}

Status TencentRec::RunTopology(
    tstorm::SpoutFactory spout,
    const std::vector<std::string>& restart_components, int spout_parallelism) {
  auto spec = topo::BuildAppTopology(app_.get(), std::move(spout),
                                     options_.materialize_results,
                                     spout_parallelism);
  if (!spec.ok()) return spec.status();

  tstorm::LocalCluster::Options copts;
  copts.queue_capacity = options_.queue_capacity;
  auto cluster =
      tstorm::LocalCluster::Create(std::move(spec).value(), copts);
  if (!cluster.ok()) return cluster.status();

  // While this topology runs, expose each component to the watchdog: the
  // heartbeat advances per spout batch / bolt pop, the backlog is the input
  // queue depth. Sources are unregistered before the cluster is destroyed.
  std::vector<int64_t> watch_ids;
  if (watchdog_ != nullptr) {
    tstorm::LocalCluster* raw = cluster->get();
    for (const auto& row : raw->WatchRows()) {
      const std::string component = row.component;
      watch_ids.push_back(watchdog_->Register(
          {"topo." + component,
           [raw, component] {
             for (const auto& w : raw->WatchRows()) {
               if (w.component == component) return w.progress;
             }
             return uint64_t{0};
           },
           [raw, component] {
             for (const auto& w : raw->WatchRows()) {
               if (w.component == component) return w.backlog;
             }
             return uint64_t{0};
           }}));
    }
  }

  std::thread restarter;
  if (!restart_components.empty()) {
    // Let some tuples flow, then crash the requested bolts mid-stream.
    restarter = std::thread([&cluster, restart_components] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      for (const auto& component : restart_components) {
        Status s = (*cluster)->RequestRestart(component);
        if (!s.ok()) {
          TR_LOG(kWarning, "restart request failed: %s",
                 s.ToString().c_str());
        }
      }
    });
  }
  Status run = (*cluster)->Run();
  if (restarter.joinable()) restarter.join();
  for (int64_t id : watch_ids) watchdog_->Unregister(id);
  TR_RETURN_IF_ERROR(run);
  last_metrics_ = (*cluster)->Metrics();
  ++batches_run_;
  return Status::OK();
}

Status TencentRec::ProcessBatch(
    const std::vector<core::UserAction>& actions,
    const std::vector<std::string>& restart_components) {
  if (options_.app.parallelism == 0 && !actions.empty()) {
    // Automatic parallelism (§7): size the keyed bolts from this batch's
    // event rate over its event-time span.
    const EventTime span = std::max<EventTime>(
        kMicrosPerSecond,
        actions.back().timestamp - actions.front().timestamp);
    const double events_per_second =
        static_cast<double>(actions.size()) /
        (static_cast<double>(span) / static_cast<double>(kMicrosPerSecond));
    app_->options.parallelism = topo::SuggestParallelism(
        events_per_second, options_.auto_parallelism_event_cost_us);
    TR_LOG(kInfo, "auto parallelism: %.0f events/s -> %d instances",
           events_per_second, app_->options.parallelism);
  }
  const std::vector<core::UserAction>* batch = &actions;
  Status run = RunTopology(
      [batch] { return std::make_unique<topo::VectorActionSpout>(batch); },
      restart_components, /*spout_parallelism=*/1);
  if (run.ok() && parallel_cf_ != nullptr) {
    // Mirror the batch through the in-memory sharded pipeline and drain so
    // its query surface is immediately consistent with this batch.
    if (TracingEnabled()) {
      // The spout samples its own copies, so the mirror must make its own
      // edge decision for the shard-stage spans to fire.
      std::vector<core::UserAction> stamped = actions;
      for (auto& a : stamped) {
        if (a.trace_id == 0) a.trace_id = MaybeStartTrace();
      }
      parallel_cf_->ProcessActions(stamped);
    } else {
      parallel_cf_->ProcessActions(actions);
    }
    parallel_cf_->Drain();
    if (options_.mirror_checkpoint) {
      Status ckpt = CheckpointMirror();
      if (!ckpt.ok()) return ckpt;
    }
  }
  if (run.ok()) {
    // Everything this batch wrote — topology bolts and the mirror
    // checkpoint's BatchWriter flush — is now in the store, so the whole
    // batch commits as one barrier across every server's WAL.
    TR_RETURN_IF_ERROR(CommitStoreBarrier());
  }
  // Batch boundary: the topology just rewrote counters/lists the query tier
  // may have cached, so drop every entry. The TTL alone would converge too,
  // but tests (and operators) expect a finished batch to be visible on the
  // very next query.
  if (query_cache_ != nullptr) query_cache_->Clear();
  return run;
}

Status TencentRec::CommitStoreBarrier() {
  if (!store_->durable()) return Status::OK();
  TR_RETURN_IF_ERROR(store_->CommitBarrier(++barrier_seq_));
  if (options_.checkpoint_interval_batches > 0 &&
      batches_run_ % options_.checkpoint_interval_batches == 0) {
    TR_RETURN_IF_ERROR(store_->Checkpoint(barrier_seq_));
  }
  return Status::OK();
}

Status TencentRec::Checkpoint() { return store_->Checkpoint(barrier_seq_); }

Status TencentRec::CheckpointMirror() {
  tdstore::BatchWriter::Options wopts;
  wopts.max_ops = options_.app.store_batch_max_ops;
  tdstore::BatchWriter writer(admin_client_.get(), wopts);
  parallel_cf_->VisitItemCounts([&](core::ItemId item, double total) {
    writer.PutDouble(app_->keys.MirrorItemCount(item), total);
  });
  parallel_cf_->VisitSimilarLists(
      [&](core::ItemId item, const TopK<core::ItemId>& list) {
        core::Recommendations recs;
        recs.reserve(list.size());
        for (size_t r = 0; r < list.size(); ++r) {
          recs.push_back({list.id_at(r), list.score_at(r)});
        }
        writer.Put(app_->keys.MirrorSimilar(item),
                   topo::EncodeScoredList(recs));
      });
  return writer.Flush();
}

Status TencentRec::PublishActions(
    const std::vector<core::UserAction>& actions) {
  for (const auto& action : actions) {
    // Stamp at the application boundary so the trace spans the full bus +
    // topology path, not just the spout onward.
    core::UserAction stamped = action;
    if (stamped.ingest_micros == 0 && MetricsEnabled()) {
      stamped.ingest_micros = MonoMicros();
    }
    // Sampling at publish (rather than at the spout) makes the trace span
    // the TDAccess hop too; the spout keeps any id already on the wire.
    if (stamped.trace_id == 0) stamped.trace_id = MaybeStartTrace();
    ScopedSpan span(stamped.trace_id, "publish");
    TR_RETURN_IF_ERROR(producer_->Send(std::to_string(stamped.user),
                                       topo::EncodeActionPayload(stamped),
                                       stamped.timestamp));
  }
  return Status::OK();
}

Status TencentRec::ProcessFromAccess() {
  tdaccess::Cluster* access = access_.get();
  const std::string topic = options_.topic;
  const std::string group = "tdprocess:" + options_.app.app;
  Status run = RunTopology(
      [access, topic, group] {
        return std::make_unique<topo::TdAccessActionSpout>(access, topic,
                                                           group);
      },
      {}, options_.spout_parallelism);
  if (run.ok()) TR_RETURN_IF_ERROR(CommitStoreBarrier());
  if (query_cache_ != nullptr) query_cache_->Clear();  // batch boundary
  return run;
}

}  // namespace tencentrec::engine
