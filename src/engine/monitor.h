#ifndef TENCENTREC_ENGINE_MONITOR_H_
#define TENCENTREC_ENGINE_MONITOR_H_

#include <string>
#include <vector>

#include "engine/tencentrec.h"

namespace tencentrec::engine {

/// The "Monitor" component of Fig. 9: a point-in-time operational snapshot
/// of a TencentRec deployment — topology throughput from the last run,
/// TDStore load and key counts per data server, and ingestion backlog on
/// the TDAccess topic.
struct MonitorSnapshot {
  struct ComponentRow {
    std::string component;
    uint64_t executed = 0;
    uint64_t emitted = 0;
    uint64_t restarts = 0;
    uint64_t busy_micros = 0;
  };
  struct StoreRow {
    int server_id = 0;
    bool down = false;
    int64_t reads = 0;
    int64_t writes = 0;
    size_t keys = 0;
  };
  /// One stage of the in-memory sharded CF pipeline (ParallelItemCf),
  /// present when the engine runs with mirror_parallel_cf.
  struct PipelineRow {
    std::string stage;
    int workers = 0;
    uint64_t events = 0;
    uint64_t batches = 0;
    uint64_t busy_micros = 0;
  };

  std::vector<ComponentRow> topology;
  std::vector<StoreRow> store;
  std::vector<PipelineRow> pipeline;
  /// Messages published to the app topic that the processing group has not
  /// yet consumed (real-time lag).
  int64_t ingestion_lag = 0;
};

/// Collects a snapshot from a running engine.
Result<MonitorSnapshot> CollectMonitorSnapshot(TencentRec* engine);

/// Renders a snapshot as a human-readable report.
std::string FormatMonitorSnapshot(const MonitorSnapshot& snapshot);

}  // namespace tencentrec::engine

#endif  // TENCENTREC_ENGINE_MONITOR_H_
