#ifndef TENCENTREC_ENGINE_MONITOR_H_
#define TENCENTREC_ENGINE_MONITOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "engine/tencentrec.h"
#include "obs/health.h"

namespace tencentrec::engine {

/// The "Monitor" component of Fig. 9: a point-in-time operational snapshot
/// of a TencentRec deployment — topology throughput from the last run,
/// TDStore load and key counts per data server, ingestion backlog on the
/// TDAccess topic, and every instrument registered in the process-wide
/// MetricRegistry (event-to-store latency per component, pipeline stage
/// timings, store op latency, consumer staleness).
struct MonitorSnapshot {
  struct ComponentRow {
    std::string component;
    uint64_t executed = 0;
    uint64_t emitted = 0;
    uint64_t restarts = 0;
    uint64_t busy_micros = 0;
  };
  struct StoreRow {
    int server_id = 0;
    bool down = false;
    int64_t reads = 0;
    int64_t writes = 0;
    size_t keys = 0;
  };
  /// One stage of the in-memory sharded CF pipeline (ParallelItemCf),
  /// present when the engine runs with mirror_parallel_cf.
  struct PipelineRow {
    std::string stage;
    int workers = 0;
    uint64_t events = 0;
    uint64_t batches = 0;
    uint64_t busy_micros = 0;
  };
  /// One registry latency histogram, frozen at collection time. Percentiles
  /// are computed from this snapshot so a single report is self-consistent.
  struct LatencyRow {
    std::string name;
    LatencyHistogram::Snapshot hist;
  };
  struct CounterRow {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    int64_t value = 0;
  };

  /// App name the engine runs (keys the "topo.<app>.<component>.*"
  /// histogram names back to topology rows).
  std::string app;
  std::vector<ComponentRow> topology;
  std::vector<StoreRow> store;
  std::vector<PipelineRow> pipeline;
  std::vector<LatencyRow> latencies;
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  /// Messages published to the app topic that the processing group has not
  /// yet consumed (real-time lag).
  int64_t ingestion_lag = 0;
  /// MonoMicros at collection time; lets two snapshots turn cumulative
  /// totals into rates and busy time into utilization.
  uint64_t wall_micros = 0;

  /// The event-to-store latency histogram of `component`, or nullptr if it
  /// never recorded (e.g. metrics disabled).
  const LatencyHistogram::Snapshot* ComponentLatency(
      const std::string& component) const;
  const LatencyRow* FindLatency(const std::string& name) const;
};

/// Collects a snapshot from a running engine.
Result<MonitorSnapshot> CollectMonitorSnapshot(TencentRec* engine);

/// Renders a snapshot as a human-readable report (topology rows annotated
/// with p50/p95/p99 event-to-store latency where available, plus a full
/// "== latency (us) ==" section over every registry histogram).
std::string FormatMonitorSnapshot(const MonitorSnapshot& snapshot);

/// OpenMetrics-flavoured text exposition: counters, gauges, and cumulative
/// `le`-bucketed histograms keyed by a `name` label so the dotted registry
/// names survive unmangled, histogram buckets annotated with
/// `# {trace_id="..."}` exemplars (ids rendered exactly as /traces renders
/// them), terminated with `# EOF`. Serve it with the OpenMetrics
/// Content-Type (see engine wiring); classic Prometheus scrapers that
/// negotiate text/plain still parse everything but the exemplars.
std::string ExportPrometheusText(const MonitorSnapshot& snapshot);

/// Machine-readable JSON document of the full snapshot.
std::string ExportJson(const MonitorSnapshot& snapshot);

/// Rates derived from two snapshots of the same engine taken `wall_seconds`
/// apart. Cumulative counters that went backwards (a topology rerun resets
/// its per-run rows) clamp to zero rather than reporting negative rates.
struct SnapshotDelta {
  double wall_seconds = 0.0;
  /// Tuples executed across all topology components per second.
  double events_per_second = 0.0;
  double store_reads_per_second = 0.0;
  double store_writes_per_second = 0.0;
  int64_t lag_delta = 0;

  struct Utilization {
    std::string component;
    /// Busy time accrued between the snapshots divided by wall time; can
    /// exceed 1.0 for components running multiple instances.
    double busy_over_wall = 0.0;
  };
  std::vector<Utilization> utilization;
};

SnapshotDelta ComputeSnapshotDelta(const MonitorSnapshot& before,
                                   const MonitorSnapshot& after);

/// Detects wedged pipeline components: a source is *stalled* when its
/// progress counter stops advancing while work is visibly queued for it —
/// progress without backlog is idle (fine), backlog without progress is
/// stuck (a deadlocked shard, a worker blocked on a dead store). Each sweep
/// compares against the previous one, so detection latency is one to two
/// periods.
///
/// On the healthy->stalled edge the watchdog files the component as
/// unhealthy in the HealthRegistry (flipping /healthz to degraded) and logs
/// a one-shot diagnostic dump: backlog depth, last progress value, and the
/// most recent trace span the component recorded, if any. Recovery —
/// progress advancing again — clears the health entry. Backlog draining to
/// zero *without* progress is NOT recovery (the queue may have been closed
/// out from under a dead worker); only forward motion clears the flag.
///
/// Sources are engine-provided closures (a tstorm component's heartbeat +
/// queue depth, a ParallelItemCf stage, a TDAccess consumer), so this class
/// depends on nothing but obs/. Registration is allowed while the thread
/// runs; a new source is seeded on its first sweep and judged from its
/// second.
class StallWatchdog {
 public:
  struct Options {
    uint64_t period_ms = 250;
    /// Where stalled components are filed; may be null (log-only mode).
    obs::HealthRegistry* health = nullptr;
  };

  struct Source {
    std::string name;
    /// Monotone progress counter; must be safe to call from the watchdog
    /// thread while the component runs.
    std::function<uint64_t()> progress;
    /// Work currently queued for the component (0 = none, never stalls).
    std::function<uint64_t()> backlog;
  };

  explicit StallWatchdog(Options options)
      : options_(options),
        stalls_counter_(MetricRegistry::Default().GetCounter("watchdog.stalls")),
        stalled_gauge_(
            MetricRegistry::Default().GetGauge("watchdog.stalled_components")) {}
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Registers a source; returns an id for Unregister. Safe while running.
  int64_t Register(Source source);
  void Unregister(int64_t id);

  void Start();
  void Stop();

  /// Runs one sweep synchronously (deterministic tests; also valid without
  /// Start()). The first sweep over a source only seeds its baseline.
  void CheckNow();

  /// Names of currently-stalled components, sorted.
  std::vector<std::string> StalledComponents() const;

  uint64_t sweeps() const;

 private:
  struct Watch {
    int64_t id = 0;
    Source source;
    uint64_t last_progress = 0;
    bool seeded = false;
    bool stalled = false;
  };

  void Sweep();
  void Loop();

  Options options_;
  /// watchdog.stalls (cumulative detection edges) and
  /// watchdog.stalled_components (currently stalled) — the instruments the
  /// default "stall-free" SLO reads off the time-series ring.
  Counter* stalls_counter_;
  Gauge* stalled_gauge_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Watch> watches_;
  int64_t next_id_ = 1;
  uint64_t sweeps_ = 0;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace tencentrec::engine

#endif  // TENCENTREC_ENGINE_MONITOR_H_
