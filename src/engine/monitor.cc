#include "engine/monitor.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>

#include "common/logging.h"
#include "common/stage.h"
#include "common/trace.h"

namespace tencentrec::engine {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char line[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line, sizeof(line), fmt, args);
  va_end(args);
  *out += line;
}

/// Escapes a Prometheus label value: backslash, double-quote and newline
/// are the three characters the text exposition reserves.
std::string PromEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Escapes a JSON string: quotes, backslashes, and every control character
/// (Prometheus rules stop at \n; JSON requires \u escapes below 0x20).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

const MonitorSnapshot::LatencyRow* MonitorSnapshot::FindLatency(
    const std::string& name) const {
  for (const auto& row : latencies) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

const LatencyHistogram::Snapshot* MonitorSnapshot::ComponentLatency(
    const std::string& component) const {
  const LatencyRow* row =
      FindLatency("topo." + app + "." + component + ".event_to_store_us");
  return row == nullptr ? nullptr : &row->hist;
}

Result<MonitorSnapshot> CollectMonitorSnapshot(TencentRec* engine) {
  MonitorSnapshot snapshot;
  snapshot.app = engine->options().app.app;
  snapshot.wall_micros = MonoMicros();

  for (const auto& m : engine->last_metrics()) {
    snapshot.topology.push_back({m.component, m.tuples_executed,
                                 m.tuples_emitted, m.restarts,
                                 m.busy_micros});
  }

  if (const core::ParallelItemCf* cf = engine->parallel_cf()) {
    for (const auto& s : cf->stage_stats()) {
      snapshot.pipeline.push_back(
          {s.stage, s.workers, s.events, s.batches, s.busy_micros});
    }
  }

  tdstore::Cluster* store = engine->store();
  for (int s = 0; s < store->num_data_servers(); ++s) {
    const tdstore::DataServer* server = store->data_server(s);
    MonitorSnapshot::StoreRow row;
    row.server_id = s;
    row.down = server->IsDown();
    row.reads = server->reads();
    row.writes = server->writes();
    row.keys = server->IsDown() ? 0 : server->TotalKeys();
    snapshot.store.push_back(row);
  }

  // Ingestion lag: end offsets minus the processing group's commits.
  tdaccess::Cluster* access = engine->access();
  const std::string& topic = engine->options().topic;
  const std::string group = "tdprocess:" + engine->options().app.app;
  auto route = access->master().GetRoute(topic);
  if (!route.ok()) return route.status();
  for (const auto& pa : route->partitions) {
    tdaccess::DataServer* server = access->data_server(pa.server_id);
    if (server == nullptr || server->IsDown()) continue;
    auto end = server->EndOffset(topic, pa.partition);
    if (!end.ok()) continue;
    auto committed = access->master().FetchOffset(topic, group, pa.partition);
    if (!committed.ok()) continue;
    snapshot.ingestion_lag += *end - *committed;
  }

  // Pull every registered instrument; the registry listings are sorted, so
  // reports and exports are stable across collections.
  MetricRegistry& reg = MetricRegistry::Default();
  for (auto& [name, value] : reg.Counters()) {
    snapshot.counters.push_back({name, value});
  }
  for (auto& [name, value] : reg.Gauges()) {
    snapshot.gauges.push_back({name, value});
  }
  for (auto& [name, hist] : reg.Histograms()) {
    snapshot.latencies.push_back({name, hist});
  }
  return snapshot;
}

std::string FormatMonitorSnapshot(const MonitorSnapshot& snapshot) {
  std::string out;

  out += "== topology (last run) ==\n";
  for (const auto& row : snapshot.topology) {
    const double mean_us =
        row.executed > 0 ? static_cast<double>(row.busy_micros) /
                               static_cast<double>(row.executed)
                         : 0.0;
    Appendf(&out,
            "  %-16s executed=%-10llu emitted=%-10llu restarts=%-4llu "
            "busy=%llums mean=%.1fus",
            row.component.c_str(),
            static_cast<unsigned long long>(row.executed),
            static_cast<unsigned long long>(row.emitted),
            static_cast<unsigned long long>(row.restarts),
            static_cast<unsigned long long>(row.busy_micros / 1000), mean_us);
    if (const auto* e2s = snapshot.ComponentLatency(row.component);
        e2s != nullptr && e2s->count > 0) {
      Appendf(&out, " e2s[p50=%.0fus p95=%.0fus p99=%.0fus max=%lluus]",
              e2s->Percentile(0.50), e2s->Percentile(0.95),
              e2s->Percentile(0.99),
              static_cast<unsigned long long>(e2s->max));
    }
    out += "\n";
  }
  if (!snapshot.pipeline.empty()) {
    out += "== parallel cf pipeline ==\n";
    for (const auto& row : snapshot.pipeline) {
      const double mean_us =
          row.events > 0 ? static_cast<double>(row.busy_micros) /
                               static_cast<double>(row.events)
                         : 0.0;
      Appendf(&out,
              "  %-16s workers=%-3d events=%-10llu batches=%-8llu "
              "busy=%llums mean=%.1fus",
              row.stage.c_str(), row.workers,
              static_cast<unsigned long long>(row.events),
              static_cast<unsigned long long>(row.batches),
              static_cast<unsigned long long>(row.busy_micros / 1000),
              mean_us);
      const auto* service = snapshot.FindLatency(
          "parallel_cf." + snapshot.app + "." + row.stage + ".service_us");
      if (service != nullptr && service->hist.count > 0) {
        Appendf(&out, " service[p50=%.0fus p95=%.0fus p99=%.0fus]",
                service->hist.Percentile(0.50),
                service->hist.Percentile(0.95),
                service->hist.Percentile(0.99));
      }
      out += "\n";
    }
  }
  out += "== tdstore ==\n";
  for (const auto& row : snapshot.store) {
    Appendf(&out,
            "  server %-2d %-5s reads=%-10lld writes=%-10lld keys=%zu\n",
            row.server_id, row.down ? "DOWN" : "up",
            static_cast<long long>(row.reads),
            static_cast<long long>(row.writes), row.keys);
  }
  Appendf(&out, "== tdaccess ==\n  ingestion lag: %lld\n",
          static_cast<long long>(snapshot.ingestion_lag));
  if (!snapshot.latencies.empty()) {
    out += "== latency (us) ==\n";
    for (const auto& row : snapshot.latencies) {
      if (row.hist.count == 0) continue;
      Appendf(&out,
              "  %-44s count=%-8llu p50=%-8.0f p95=%-8.0f p99=%-8.0f "
              "max=%llu\n",
              row.name.c_str(),
              static_cast<unsigned long long>(row.hist.count),
              row.hist.Percentile(0.50), row.hist.Percentile(0.95),
              row.hist.Percentile(0.99),
              static_cast<unsigned long long>(row.hist.max));
    }
  }
  return out;
}

std::string ExportPrometheusText(const MonitorSnapshot& snapshot) {
  std::string out;

  out += "# HELP tencentrec_counter Cumulative event counts by instrument.\n";
  out += "# TYPE tencentrec_counter counter\n";
  for (const auto& row : snapshot.counters) {
    Appendf(&out, "tencentrec_counter{name=\"%s\"} %llu\n",
            PromEscape(row.name).c_str(),
            static_cast<unsigned long long>(row.value));
  }

  out += "# HELP tencentrec_gauge Instantaneous values by instrument.\n";
  out += "# TYPE tencentrec_gauge gauge\n";
  for (const auto& row : snapshot.gauges) {
    Appendf(&out, "tencentrec_gauge{name=\"%s\"} %lld\n",
            PromEscape(row.name).c_str(), static_cast<long long>(row.value));
  }
  Appendf(&out, "tencentrec_gauge{name=\"engine.ingestion_lag\"} %lld\n",
          static_cast<long long>(snapshot.ingestion_lag));

  out += "# HELP tencentrec_store_ops_total TDStore ops by server.\n";
  out += "# TYPE tencentrec_store_ops_total counter\n";
  for (const auto& row : snapshot.store) {
    Appendf(&out,
            "tencentrec_store_ops_total{server=\"%d\",op=\"read\"} %lld\n",
            row.server_id, static_cast<long long>(row.reads));
    Appendf(&out,
            "tencentrec_store_ops_total{server=\"%d\",op=\"write\"} %lld\n",
            row.server_id, static_cast<long long>(row.writes));
  }

  out += "# HELP tencentrec_component_executed_total Tuples executed in the "
         "last topology run.\n";
  out += "# TYPE tencentrec_component_executed_total counter\n";
  for (const auto& row : snapshot.topology) {
    Appendf(&out,
            "tencentrec_component_executed_total{component=\"%s\"} %llu\n",
            PromEscape(row.component).c_str(),
            static_cast<unsigned long long>(row.executed));
  }

  out += "# HELP tencentrec_latency_us Latency distributions in "
         "microseconds.\n";
  out += "# TYPE tencentrec_latency_us histogram\n";
  for (const auto& row : snapshot.latencies) {
    const std::string label = PromEscape(row.name);
    uint64_t cumulative = 0;
    for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      const uint64_t n = row.hist.buckets[static_cast<size_t>(b)];
      if (n == 0) continue;  // sparse: only emit buckets that move the CDF
      cumulative += n;
      Appendf(&out,
              "tencentrec_latency_us_bucket{name=\"%s\",le=\"%llu\"} %llu",
              label.c_str(),
              static_cast<unsigned long long>(
                  LatencyHistogram::BucketUpperBound(b)),
              static_cast<unsigned long long>(cumulative));
      // OpenMetrics exemplar: the trace id of a recent sample in this
      // bucket, rendered exactly as /traces renders ids so the two join.
      const uint64_t exemplar = row.hist.exemplars[static_cast<size_t>(b)];
      if (exemplar != 0) {
        Appendf(&out, " # {trace_id=\"%016llx\"} %llu",
                static_cast<unsigned long long>(exemplar),
                static_cast<unsigned long long>(
                    LatencyHistogram::BucketUpperBound(b)));
      }
      out += "\n";
    }
    Appendf(&out,
            "tencentrec_latency_us_bucket{name=\"%s\",le=\"+Inf\"} %llu\n",
            label.c_str(), static_cast<unsigned long long>(row.hist.count));
    Appendf(&out, "tencentrec_latency_us_sum{name=\"%s\"} %llu\n",
            label.c_str(), static_cast<unsigned long long>(row.hist.sum));
    Appendf(&out, "tencentrec_latency_us_count{name=\"%s\"} %llu\n",
            label.c_str(), static_cast<unsigned long long>(row.hist.count));
  }
  out += "# EOF\n";
  return out;
}

std::string ExportJson(const MonitorSnapshot& snapshot) {
  std::string out = "{";
  Appendf(&out, "\"app\":\"%s\",", JsonEscape(snapshot.app).c_str());
  Appendf(&out, "\"wall_micros\":%llu,",
          static_cast<unsigned long long>(snapshot.wall_micros));
  Appendf(&out, "\"ingestion_lag\":%lld,",
          static_cast<long long>(snapshot.ingestion_lag));

  out += "\"topology\":[";
  for (size_t i = 0; i < snapshot.topology.size(); ++i) {
    const auto& row = snapshot.topology[i];
    Appendf(&out,
            "%s{\"component\":\"%s\",\"executed\":%llu,\"emitted\":%llu,"
            "\"restarts\":%llu,\"busy_micros\":%llu}",
            i == 0 ? "" : ",", JsonEscape(row.component).c_str(),
            static_cast<unsigned long long>(row.executed),
            static_cast<unsigned long long>(row.emitted),
            static_cast<unsigned long long>(row.restarts),
            static_cast<unsigned long long>(row.busy_micros));
  }
  out += "],\"pipeline\":[";
  for (size_t i = 0; i < snapshot.pipeline.size(); ++i) {
    const auto& row = snapshot.pipeline[i];
    Appendf(&out,
            "%s{\"stage\":\"%s\",\"workers\":%d,\"events\":%llu,"
            "\"batches\":%llu,\"busy_micros\":%llu}",
            i == 0 ? "" : ",", JsonEscape(row.stage).c_str(), row.workers,
            static_cast<unsigned long long>(row.events),
            static_cast<unsigned long long>(row.batches),
            static_cast<unsigned long long>(row.busy_micros));
  }
  out += "],\"store\":[";
  for (size_t i = 0; i < snapshot.store.size(); ++i) {
    const auto& row = snapshot.store[i];
    Appendf(&out,
            "%s{\"server\":%d,\"down\":%s,\"reads\":%lld,\"writes\":%lld,"
            "\"keys\":%zu}",
            i == 0 ? "" : ",", row.server_id, row.down ? "true" : "false",
            static_cast<long long>(row.reads),
            static_cast<long long>(row.writes), row.keys);
  }
  out += "],\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    Appendf(&out, "%s\"%s\":%llu", i == 0 ? "" : ",",
            JsonEscape(snapshot.counters[i].name).c_str(),
            static_cast<unsigned long long>(snapshot.counters[i].value));
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    Appendf(&out, "%s\"%s\":%lld", i == 0 ? "" : ",",
            JsonEscape(snapshot.gauges[i].name).c_str(),
            static_cast<long long>(snapshot.gauges[i].value));
  }
  out += "},\"latencies\":{";
  bool first = true;
  for (const auto& row : snapshot.latencies) {
    Appendf(&out,
            "%s\"%s\":{\"count\":%llu,\"sum\":%llu,\"min\":%llu,"
            "\"max\":%llu,\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}",
            first ? "" : ",", JsonEscape(row.name).c_str(),
            static_cast<unsigned long long>(row.hist.count),
            static_cast<unsigned long long>(row.hist.sum),
            static_cast<unsigned long long>(
                row.hist.count > 0 ? row.hist.min : 0),
            static_cast<unsigned long long>(row.hist.max),
            row.hist.Percentile(0.50), row.hist.Percentile(0.95),
            row.hist.Percentile(0.99));
    first = false;
  }
  out += "}}";
  return out;
}

SnapshotDelta ComputeSnapshotDelta(const MonitorSnapshot& before,
                                   const MonitorSnapshot& after) {
  SnapshotDelta delta;
  const uint64_t wall = after.wall_micros > before.wall_micros
                            ? after.wall_micros - before.wall_micros
                            : 0;
  delta.wall_seconds = static_cast<double>(wall) / 1e6;
  delta.lag_delta = after.ingestion_lag - before.ingestion_lag;
  if (wall == 0) {
    // Same instant (coarse clocks make this reachable): rates and
    // utilization are undefined, so report zeros instead of dividing —
    // but still emit one utilization row per component so consumers can
    // iterate the delta without special-casing.
    for (const auto& row : after.topology) {
      delta.utilization.push_back({row.component, 0.0});
    }
    return delta;
  }

  auto clamped = [](uint64_t later, uint64_t earlier) -> double {
    return later > earlier ? static_cast<double>(later - earlier) : 0.0;
  };

  double executed = 0.0;
  for (const auto& row : after.topology) {
    uint64_t prior_executed = 0;
    uint64_t prior_busy = 0;
    for (const auto& b : before.topology) {
      if (b.component == row.component) {
        prior_executed = b.executed;
        prior_busy = b.busy_micros;
        break;
      }
    }
    executed += clamped(row.executed, prior_executed);
    delta.utilization.push_back(
        {row.component,
         clamped(row.busy_micros, prior_busy) / static_cast<double>(wall)});
  }
  delta.events_per_second = executed / delta.wall_seconds;

  double reads = 0.0;
  double writes = 0.0;
  for (const auto& row : after.store) {
    int64_t prior_reads = 0;
    int64_t prior_writes = 0;
    for (const auto& b : before.store) {
      if (b.server_id == row.server_id) {
        prior_reads = b.reads;
        prior_writes = b.writes;
        break;
      }
    }
    reads += static_cast<double>(std::max<int64_t>(0, row.reads - prior_reads));
    writes +=
        static_cast<double>(std::max<int64_t>(0, row.writes - prior_writes));
  }
  delta.store_reads_per_second = reads / delta.wall_seconds;
  delta.store_writes_per_second = writes / delta.wall_seconds;
  return delta;
}

// --- StallWatchdog ----------------------------------------------------------

StallWatchdog::~StallWatchdog() { Stop(); }

int64_t StallWatchdog::Register(Source source) {
  std::lock_guard<std::mutex> lock(mu_);
  Watch w;
  w.id = next_id_++;
  w.source = std::move(source);
  watches_.push_back(std::move(w));
  return watches_.back().id;
}

void StallWatchdog::Unregister(int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = watches_.begin(); it != watches_.end(); ++it) {
    if (it->id != id) continue;
    if (it->stalled && options_.health != nullptr) {
      options_.health->Clear(it->source.name);
    }
    watches_.erase(it);
    return;
  }
}

void StallWatchdog::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void StallWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void StallWatchdog::Loop() {
  RegisterStageThread("obs.watchdog");
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.period_ms),
                 [&] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    Sweep();
    lock.lock();
  }
}

void StallWatchdog::CheckNow() { Sweep(); }

void StallWatchdog::Sweep() {
  struct Sample {
    uint64_t progress = 0;
    uint64_t backlog = 0;
  };
  // Holding mu_ while the closures run is safe — they only touch their
  // component's atomics and queue locks, never this watchdog — and keeps a
  // sweep atomic with respect to Register/Unregister.
  std::lock_guard<std::mutex> lock(mu_);
  ++sweeps_;
  int64_t stalled_now = 0;
  for (auto& watch : watches_) {
    Watch* w = &watch;
    const Sample sample{w->source.progress(), w->source.backlog()};

    if (!w->seeded) {
      w->seeded = true;
      w->last_progress = sample.progress;
      continue;
    }
    const bool advanced = sample.progress != w->last_progress;
    w->last_progress = sample.progress;

    if (advanced) {
      if (w->stalled) {
        w->stalled = false;
        if (options_.health != nullptr) {
          options_.health->Set(w->source.name, true);
        }
        TR_LOG(kInfo, "watchdog: %s recovered (progress=%llu)",
               w->source.name.c_str(),
               static_cast<unsigned long long>(sample.progress));
      }
      continue;
    }
    // No forward motion. Stalled only if work is visibly waiting;
    // no-progress-no-backlog is idle. Already-stalled components stay
    // stalled until progress resumes (a drained-but-dead worker is still
    // dead).
    if (!w->stalled && sample.backlog > 0) {
      w->stalled = true;
      stalls_counter_->Add(1);
      char reason[128];
      std::snprintf(reason, sizeof(reason),
                    "no progress for one watchdog period with backlog=%llu",
                    static_cast<unsigned long long>(sample.backlog));
      if (options_.health != nullptr) {
        options_.health->Set(w->source.name, false, reason);
      }
      // One-shot diagnostic dump on the detection edge.
      TraceSpan last_span;
      const bool have_span =
          Tracer::Default().LastSpanNamed(w->source.name, &last_span);
      if (have_span) {
        TR_LOG(kWarning,
               "watchdog: %s STALLED backlog=%llu progress=%llu "
               "last_span=[start=%llu dur=%lluus tid=%u]",
               w->source.name.c_str(),
               static_cast<unsigned long long>(sample.backlog),
               static_cast<unsigned long long>(sample.progress),
               static_cast<unsigned long long>(last_span.start_micros),
               static_cast<unsigned long long>(last_span.duration_micros),
               last_span.tid);
      } else {
        TR_LOG(kWarning,
               "watchdog: %s STALLED backlog=%llu progress=%llu "
               "(no recorded span)",
               w->source.name.c_str(),
               static_cast<unsigned long long>(sample.backlog),
               static_cast<unsigned long long>(sample.progress));
      }
    }
  }
  for (const auto& w : watches_) {
    if (w.stalled) ++stalled_now;
  }
  stalled_gauge_->Set(stalled_now);
}

std::vector<std::string> StallWatchdog::StalledComponents() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& w : watches_) {
    if (w.stalled) out.push_back(w.source.name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t StallWatchdog::sweeps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sweeps_;
}

}  // namespace tencentrec::engine
