#include "engine/monitor.h"

#include <cstdio>

namespace tencentrec::engine {

Result<MonitorSnapshot> CollectMonitorSnapshot(TencentRec* engine) {
  MonitorSnapshot snapshot;

  for (const auto& m : engine->last_metrics()) {
    snapshot.topology.push_back({m.component, m.tuples_executed,
                                 m.tuples_emitted, m.restarts,
                                 m.busy_micros});
  }

  if (const core::ParallelItemCf* cf = engine->parallel_cf()) {
    for (const auto& s : cf->stage_stats()) {
      snapshot.pipeline.push_back(
          {s.stage, s.workers, s.events, s.batches, s.busy_micros});
    }
  }

  tdstore::Cluster* store = engine->store();
  for (int s = 0; s < store->num_data_servers(); ++s) {
    const tdstore::DataServer* server = store->data_server(s);
    MonitorSnapshot::StoreRow row;
    row.server_id = s;
    row.down = server->IsDown();
    row.reads = server->reads();
    row.writes = server->writes();
    row.keys = server->IsDown() ? 0 : server->TotalKeys();
    snapshot.store.push_back(row);
  }

  // Ingestion lag: end offsets minus the processing group's commits.
  tdaccess::Cluster* access = engine->access();
  const std::string& topic = engine->options().topic;
  const std::string group = "tdprocess:" + engine->options().app.app;
  auto route = access->master().GetRoute(topic);
  if (!route.ok()) return route.status();
  for (const auto& pa : route->partitions) {
    tdaccess::DataServer* server = access->data_server(pa.server_id);
    if (server == nullptr || server->IsDown()) continue;
    auto end = server->EndOffset(topic, pa.partition);
    if (!end.ok()) continue;
    auto committed = access->master().FetchOffset(topic, group, pa.partition);
    if (!committed.ok()) continue;
    snapshot.ingestion_lag += *end - *committed;
  }
  return snapshot;
}

std::string FormatMonitorSnapshot(const MonitorSnapshot& snapshot) {
  std::string out;
  char line[160];

  out += "== topology (last run) ==\n";
  for (const auto& row : snapshot.topology) {
    const double mean_us =
        row.executed > 0 ? static_cast<double>(row.busy_micros) /
                               static_cast<double>(row.executed)
                         : 0.0;
    std::snprintf(line, sizeof(line),
                  "  %-16s executed=%-10llu emitted=%-10llu restarts=%-4llu "
                  "busy=%llums mean=%.1fus\n",
                  row.component.c_str(),
                  static_cast<unsigned long long>(row.executed),
                  static_cast<unsigned long long>(row.emitted),
                  static_cast<unsigned long long>(row.restarts),
                  static_cast<unsigned long long>(row.busy_micros / 1000),
                  mean_us);
    out += line;
  }
  if (!snapshot.pipeline.empty()) {
    out += "== parallel cf pipeline ==\n";
    for (const auto& row : snapshot.pipeline) {
      const double mean_us =
          row.events > 0 ? static_cast<double>(row.busy_micros) /
                               static_cast<double>(row.events)
                         : 0.0;
      std::snprintf(line, sizeof(line),
                    "  %-16s workers=%-3d events=%-10llu batches=%-8llu "
                    "busy=%llums mean=%.1fus\n",
                    row.stage.c_str(), row.workers,
                    static_cast<unsigned long long>(row.events),
                    static_cast<unsigned long long>(row.batches),
                    static_cast<unsigned long long>(row.busy_micros / 1000),
                    mean_us);
      out += line;
    }
  }
  out += "== tdstore ==\n";
  for (const auto& row : snapshot.store) {
    std::snprintf(line, sizeof(line),
                  "  server %-2d %-5s reads=%-10lld writes=%-10lld keys=%zu\n",
                  row.server_id, row.down ? "DOWN" : "up",
                  static_cast<long long>(row.reads),
                  static_cast<long long>(row.writes), row.keys);
    out += line;
  }
  std::snprintf(line, sizeof(line), "== tdaccess ==\n  ingestion lag: %lld\n",
                static_cast<long long>(snapshot.ingestion_lag));
  out += line;
  return out;
}

}  // namespace tencentrec::engine
