#ifndef TENCENTREC_ENGINE_TENCENTREC_H_
#define TENCENTREC_ENGINE_TENCENTREC_H_

#include <memory>
#include <string>
#include <vector>

#include "core/itemcf/parallel_cf.h"
#include "obs/admin_server.h"
#include "obs/health.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "tdaccess/cluster.h"
#include "tdaccess/producer.h"
#include "tdstore/cluster.h"
#include "topo/app.h"
#include "topo/query.h"
#include "tstorm/cluster.h"

namespace tencentrec::engine {

class StallWatchdog;  // engine/monitor.h (which includes this header)

/// The full TencentRec deployment of Fig. 9, in one object: a TDAccess
/// cluster collecting application action streams, the Storm-style
/// processing tier (TDProcess) running the app's topology, a TDStore
/// cluster holding all recommendation state, and the recommender-engine
/// query path reading from it.
///
/// Ingestion is batch-at-a-time: each ProcessBatch()/ProcessFromAccess()
/// call spins up a fresh topology, streams the batch through it to drain,
/// and tears it down. Because every bolt is stateless (state in TDStore),
/// consecutive batches compose exactly like one continuous stream — this is
/// the same property that makes worker restarts safe, and tests verify
/// both.
class TencentRec {
 public:
  struct Options {
    topo::AppOptions app;
    tdstore::Cluster::Options store;
    tdaccess::Cluster::Options access;
    /// Topic carrying this app's action stream on TDAccess.
    std::string topic = "user_actions";
    int topic_partitions = 4;
    /// Spout instances for ProcessFromAccess(): each joins the consumer
    /// group as its own member, so the master balances the topic's
    /// partitions across them ("in parallelism of partitions", §3.2).
    int spout_parallelism = 1;
    /// Materialize per-user results via ResultStorageBolt.
    bool materialize_results = false;
    /// app.parallelism == 0 enables automatic parallelism (§7 future work):
    /// each ProcessBatch sizes the keyed bolts from the batch's event rate.
    double auto_parallelism_event_cost_us = 50.0;
    size_t queue_capacity = 4096;
    /// Also stream every ProcessBatch through an in-memory sharded
    /// ParallelItemCf (the Fig. 4 pipeline as real threads). Durable state
    /// stays in TDStore; the mirror serves low-latency similarity /
    /// recommendation queries without a store round-trip, and its
    /// per-stage counters appear in the monitor snapshot.
    bool mirror_parallel_cf = false;
    int mirror_user_shards = 2;
    int mirror_pair_shards = 2;
    /// After each mirrored batch drains, export the mirror's windowed
    /// itemCount totals and similar-items lists into TDStore
    /// (Keys::MirrorItemCount / MirrorSimilar) through the write-behind
    /// BatchWriter — a store-backed checkpoint of the in-memory state that
    /// costs a handful of grouped per-host calls instead of one put per
    /// item. Requires mirror_parallel_cf.
    bool mirror_checkpoint = false;
    /// With store durability on (store.durability.enabled): checkpoint the
    /// TDStore cluster every N batches — snapshot all instances, truncate
    /// the WALs behind them — so recovery replays a bounded log. 0 never
    /// auto-checkpoints; call Checkpoint() explicitly. Independent of the
    /// per-batch commit barrier, which is always appended when durable.
    int64_t checkpoint_interval_batches = 0;
    /// Sampled per-tuple tracing: trace 1 in N actions end to end
    /// (spout -> bolts -> store). 0 leaves the process-wide sampling rate
    /// untouched (tracing stays off unless something else enabled it).
    uint32_t trace_sample_every = 0;
    /// Embedded ops HTTP plane (/metrics, /vars, /healthz, /readyz,
    /// /traces). Loopback-only by default; port 0 picks an ephemeral port
    /// (read it back via admin_server()->port()).
    bool enable_admin_server = false;
    std::string admin_bind_address = "127.0.0.1";
    int admin_port = 0;
    /// Background stall watchdog over the ParallelItemCf mirror stages (and
    /// any topology run) — flips /healthz to degraded on a wedged stage.
    bool enable_watchdog = false;
    uint64_t watchdog_period_ms = 250;
    /// In-process metric history: a background sampler snapshots the
    /// registry into a fixed ring every sample period, served via
    /// /timeseries?metric=...&window=.... The freshness gauges are
    /// published as the sampler's pre-sample hook, so every sample carries
    /// watermark lags computed at the sample instant.
    bool enable_timeseries = false;
    uint64_t timeseries_sample_period_ms = 1000;
    size_t timeseries_capacity = 600;
    /// Burn-rate SLO evaluation over the time-series ring (implies
    /// enable_timeseries); default objectives cover event-to-store p99,
    /// end-to-end freshness lag, store error rate, and stall-freedom.
    /// Breaches file into HealthRegistry (/healthz, and /readyz for
    /// readiness-gating objectives) and are served via /slo.
    bool enable_slo = false;
    /// Default-objective thresholds (see DESIGN.md §12).
    uint64_t slo_e2s_p99_micros = 2ull * 1000 * 1000;
    uint64_t slo_freshness_lag_micros = 5ull * 1000 * 1000;
    double slo_store_error_ratio = 0.001;
    /// Burn-rate windows for the default objectives; tests shrink these so
    /// one SampleNow/EvaluateNow pair flips a breach deterministically.
    uint64_t slo_short_window_micros = 60ull * 1000 * 1000;
    uint64_t slo_long_window_micros = 300ull * 1000 * 1000;
    /// Continuous CPU profiling plane (DESIGN.md §13): per-thread SIGPROF
    /// sampling of every registered stage thread, served at
    /// /profile/cpu?seconds=N&format=folded|json, /profile/contention and
    /// the /profile/enabled kill switch (routes exist whenever the admin
    /// server does). Off by default: the profiler owns the process-wide
    /// SIGPROF disposition, which embedding applications may want.
    bool enable_profiler = false;
    int profiler_hz = 97;
  };

  static Result<std::unique_ptr<TencentRec>> Create(Options options);
  ~TencentRec();

  /// --- CB catalog (Application Specific setup) ---

  /// Registers an item's content tags (and publish time) in TDStore; the
  /// tag inverted index is updated for candidate generation.
  Status RegisterItem(core::ItemId item, const core::TagVector& tags,
                      EventTime published);

  /// --- ingestion ---

  /// Runs one topology over `actions` (VectorActionSpout) to completion.
  /// `restart_components` simulates worker crashes of those bolts while the
  /// batch streams.
  Status ProcessBatch(const std::vector<core::UserAction>& actions,
                      const std::vector<std::string>& restart_components = {});

  /// Publishes actions onto the TDAccess topic (the applications' side).
  Status PublishActions(const std::vector<core::UserAction>& actions);

  /// Runs one topology consuming the TDAccess topic until caught up.
  Status ProcessFromAccess();

  /// Checkpoints the TDStore cluster now (no-op when durability is off):
  /// snapshots every instance and resets the WALs behind the snapshots.
  Status Checkpoint();

  /// The barrier id of the last committed batch (resumes from the store's
  /// recovered barrier after a restart; 0 = nothing committed).
  uint64_t last_barrier() const { return barrier_seq_; }

  /// --- queries (recommender engine) ---
  topo::StoreQuery& query() { return *query_; }

  /// The shared batched-query-tier cache (nullptr when query batching is
  /// off). Hand this to extra per-thread StoreQuery instances so concurrent
  /// querents coalesce identical in-flight reads into one store round-trip.
  std::shared_ptr<topo::QueryCache> query_cache() { return query_cache_; }

  /// --- introspection / fault injection ---
  tdstore::Cluster* store() { return store_.get(); }
  tdaccess::Cluster* access() { return access_.get(); }
  /// The in-memory sharded CF mirror (nullptr unless mirror_parallel_cf).
  /// Drained after every ProcessBatch, so queries on it are always valid.
  core::ParallelItemCf* parallel_cf() { return parallel_cf_.get(); }
  const core::ParallelItemCf* parallel_cf() const {
    return parallel_cf_.get();
  }
  const topo::AppContext& app() const { return *app_; }
  const Options& options() const { return options_; }
  /// Metrics of the most recent topology run.
  const std::vector<tstorm::ComponentMetrics>& last_metrics() const {
    return last_metrics_;
  }
  /// Ops plane (nullptr unless enable_admin_server).
  obs::AdminServer* admin_server() { return admin_.get(); }
  /// Liveness/readiness registry backing /healthz and /readyz.
  obs::HealthRegistry& health() { return health_; }
  /// The stall watchdog (nullptr unless enable_watchdog).
  StallWatchdog* watchdog() { return watchdog_.get(); }
  /// Metric history ring (nullptr unless enable_timeseries/enable_slo).
  obs::TimeSeriesStore* timeseries() { return timeseries_.get(); }
  /// Burn-rate SLO engine (nullptr unless enable_slo).
  obs::SloRegistry* slo() { return slo_.get(); }

 private:
  explicit TencentRec(Options options);
  Status Init();
  Status RunTopology(tstorm::SpoutFactory spout,
                     const std::vector<std::string>& restart_components,
                     int spout_parallelism);
  /// Exports the drained mirror's state into TDStore through a BatchWriter
  /// (mirror_checkpoint).
  Status CheckpointMirror();
  /// Post-batch durability hook: appends the next commit barrier to every
  /// store WAL (after the mirror checkpoint's BatchWriter flush, so the
  /// barrier covers a consistent post-flush state) and auto-checkpoints on
  /// the configured interval. No-op when durability is off.
  Status CommitStoreBarrier();

  Options options_;
  std::unique_ptr<tdstore::Cluster> store_;
  std::unique_ptr<tdaccess::Cluster> access_;
  std::unique_ptr<topo::AppContext> app_;
  std::unique_ptr<tdstore::Client> admin_client_;
  std::unique_ptr<tdaccess::Producer> producer_;
  std::shared_ptr<topo::QueryCache> query_cache_;
  std::unique_ptr<topo::StoreQuery> query_;
  std::unique_ptr<core::ParallelItemCf> parallel_cf_;
  std::vector<tstorm::ComponentMetrics> last_metrics_;
  int64_t batches_run_ = 0;
  /// Monotone commit-barrier sequence; seeded from the store's recovered
  /// barrier so numbering continues across restarts.
  uint64_t barrier_seq_ = 0;

  obs::HealthRegistry health_;
  std::unique_ptr<obs::TimeSeriesStore> timeseries_;
  /// Declared after timeseries_ (reads its ring) and health_ (files
  /// breaches); destroyed before both.
  std::unique_ptr<obs::SloRegistry> slo_;
  std::unique_ptr<obs::AdminServer> admin_;
  /// True when this engine's Init() started the process-wide profiler (so
  /// only this engine's destructor stops it).
  bool profiler_started_ = false;
  /// Declared after the things its sources sample (parallel_cf_); destroyed
  /// first by the explicit destructor, which stops it before anything it
  /// watches goes away.
  std::unique_ptr<StallWatchdog> watchdog_;
};

}  // namespace tencentrec::engine

#endif  // TENCENTREC_ENGINE_TENCENTREC_H_
