#!/usr/bin/env bash
# The full CI gate, in the order a reviewer wants failures surfaced:
#
#   1. tier-1 verify: configure + build + the whole ctest suite, then the
#      observability label on its own (the obs plane must pass standalone,
#      not only interleaved with the suite);
#   2. the profiling-plane smoke: boot a live engine, pull a 2 s CPU
#      profile over /profile/cpu, and assert the folded output is real
#      (>= 100 deduped stacks, >= 90% of samples stage-attributed);
#   3. the `durable` label on its own (torn-tail recovery sweeps, snapshot
#      round-trips, and the kill-mid-stream SIGKILL recovery test must pass
#      standalone, not only interleaved with the suite);
#   4. an AddressSanitizer+UBSan build running the `itemcf` label (the
#      raw-memory flat tables, arena scratch, and SoA TopK of DESIGN.md
#      §15, in both flat and legacy kernel modes);
#   5. a ThreadSanitizer build running the `concurrent` label (sharded
#      executor, striped histogram/tracer, batch clients, single-flight).
#
#   scripts/ci_verify.sh [build-dir] [tsan-build-dir] [asan-build-dir]
#
# Env:
#   TR_SKIP_ASAN=1   skip step 4 (e.g. on hosts without ASan runtime)
#   TR_SKIP_TSAN=1   skip step 5 (e.g. on hosts without TSan runtime)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
tsan_dir="${2:-$repo_root/build-tsan}"
asan_dir="${3:-$repo_root/build-asan}"

echo "=== tier-1: build + full suite + obs label ==="
cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j
(cd "$build_dir" && ctest --output-on-failure -j "$(nproc)")
(cd "$build_dir" && ctest -L obs --output-on-failure)

echo "=== profiler smoke: live engine, 2 s folded profile ==="
"$build_dir/tools/profile_smoke"

echo "=== durable: WAL/snapshot recovery incl. kill-mid-stream ==="
(cd "$build_dir" && ctest -L durable --output-on-failure)

if [[ "${TR_SKIP_ASAN:-0}" == "1" ]]; then
  echo "=== asan: skipped (TR_SKIP_ASAN=1) ==="
else
  echo "=== asan: itemcf label under AddressSanitizer+UBSan ==="
  cmake -B "$asan_dir" -S "$repo_root" -DTR_SANITIZE_ADDRESS=ON
  cmake --build "$asan_dir" -j
  (cd "$asan_dir" && ctest -L itemcf --output-on-failure)
fi

if [[ "${TR_SKIP_TSAN:-0}" == "1" ]]; then
  echo "=== tsan: skipped (TR_SKIP_TSAN=1) ==="
  exit 0
fi

echo "=== tsan: concurrent label under ThreadSanitizer ==="
cmake -B "$tsan_dir" -S "$repo_root" -DTR_SANITIZE_THREAD=ON
cmake --build "$tsan_dir" -j
(cd "$tsan_dir" && ctest -L concurrent --output-on-failure)

echo "ci_verify: all gates passed"
