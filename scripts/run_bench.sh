#!/usr/bin/env bash
# Runs the JSON-emitting microbenches and collects their BENCH_<name>.json
# results into one directory (default: bench/ in the repo, so baselines can
# be committed and diffed across changes).
#
#   scripts/run_bench.sh [build-dir] [out-dir]
#
# Env:
#   TR_BENCH_OUT   overrides out-dir
#   TR_BENCH_ONLY  space-separated subset of bench names to run
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${TR_BENCH_OUT:-${2:-$repo_root/bench}}"

if [[ ! -d "$build_dir/bench" ]]; then
  echo "error: $build_dir/bench not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
mkdir -p "$out_dir"

# Benches that emit BENCH_<name>.json (see bench/bench_util.h).
json_benches=(micro_parallel micro_metrics micro_store micro_query)
if [[ -n "${TR_BENCH_ONLY:-}" ]]; then
  read -r -a json_benches <<<"$TR_BENCH_ONLY"
fi

for name in "${json_benches[@]}"; do
  bin="$build_dir/bench/$name"
  if [[ ! -x "$bin" ]]; then
    echo "skip: $bin missing" >&2
    continue
  fi
  echo "== $name =="
  # google-benchmark-based binaries get a trimmed repetition count; the
  # JSON emitter inside each binary uses its own fixed rep policy.
  TR_BENCH_OUT="$out_dir" "$bin" --benchmark_min_time=0.1s || exit 1
  echo
done

echo "results:"
ls -l "$out_dir"/BENCH_*.json
