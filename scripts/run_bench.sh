#!/usr/bin/env bash
# Runs the JSON-emitting microbenches and collects their BENCH_<name>.json
# results into one directory (default: bench/ in the repo, so baselines can
# be committed and diffed across changes).
#
#   scripts/run_bench.sh [build-dir] [out-dir]
#
# Env:
#   TR_BENCH_OUT   overrides out-dir
#   TR_BENCH_ONLY  space-separated subset of bench names to run
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${TR_BENCH_OUT:-${2:-$repo_root/bench}}"

if [[ ! -d "$build_dir/bench" ]]; then
  echo "error: $build_dir/bench not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
mkdir -p "$out_dir"

# Benches that emit BENCH_<name>.json (see bench/bench_util.h).
json_benches=(micro_itemcf micro_parallel micro_metrics micro_store micro_query
              micro_recover)
if [[ -n "${TR_BENCH_ONLY:-}" ]]; then
  read -r -a json_benches <<<"$TR_BENCH_ONLY"
fi

for name in "${json_benches[@]}"; do
  bin="$build_dir/bench/$name"
  if [[ ! -x "$bin" ]]; then
    echo "skip: $bin missing" >&2
    continue
  fi
  echo "== $name =="
  # google-benchmark-based binaries get a trimmed repetition count; the
  # JSON emitter inside each binary uses its own fixed rep policy. (Plain
  # "0.1", not "0.1s" — the pinned benchmark library predates the
  # suffixed-duration flag syntax and rejects it.)
  TR_BENCH_OUT="$out_dir" "$bin" --benchmark_min_time=0.1 || exit 1
  echo
done

echo "results:"
ls -l "$out_dir"/BENCH_*.json

# Append this run to the trajectory log: one JSONL line per invocation with
# a run id, the git sha, and every collected bench's metrics — the long-term
# record scripts/check_bench.py's point-in-time gate does not keep.
trajectory="$out_dir/BENCH_trajectory.jsonl"
python3 - "$out_dir" "$trajectory" "$repo_root" <<'PYEOF'
import glob, json, os, subprocess, sys, time, uuid

out_dir, trajectory, repo_root = sys.argv[1], sys.argv[2], sys.argv[3]
try:
    sha = subprocess.run(["git", "rev-parse", "HEAD"],
                         capture_output=True, text=True, cwd=repo_root,
                         check=True).stdout.strip()
except (subprocess.CalledProcessError, OSError):
    sha = "unknown"
benches = {}
for path in sorted(glob.glob(os.path.join(out_dir, "BENCH_*.json"))):
    with open(path) as f:
        record = json.load(f)
    benches[record.pop("name", os.path.basename(path))] = record
line = {
    "run_id": uuid.uuid4().hex[:12],
    "git_sha": sha,
    "timestamp": int(time.time()),
    "benches": benches,
}
with open(trajectory, "a") as f:
    f.write(json.dumps(line, sort_keys=True) + "\n")
print(f"trajectory -> {trajectory} (run {line['run_id']} @ {sha[:12]})")
PYEOF
