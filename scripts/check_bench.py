#!/usr/bin/env python3
"""Bench regression gate: fresh results vs the committed baselines.

Compares each BENCH_<name>.json in the results directory against the
baseline committed at HEAD (``git show HEAD:bench/BENCH_<name>.json``) and
fails when throughput regressed by more than the threshold.

Fresh results are also checked against the observability overhead budget:
every ``*_overhead_pct`` field (the paired plain-vs-instrumented ratios the
micro benches emit, e.g. ``obs_overhead_pct``, ``profiler_overhead_pct``,
and micro_recover's ``wal_overhead_pct`` — the WAL's share of per-action
pipeline CPU) must stay at or below the absolute budget — 3% by default,
per the DESIGN.md §12/§13/§14 contract that the metrics/tracing/profiling
planes and the durability WAL are cheap enough to leave on. This is an
absolute gate on the fresh run, not a baseline comparison: the budget IS
the contract.

    scripts/check_bench.py [results-dir] [--threshold-pct 20]
                           [--overhead-budget-pct 3] [--ref HEAD]

Benches with no committed baseline (new benches) are reported and skipped
for the throughput comparison; the overhead budget still applies to them.
Exit status: 0 = no regression, 1 = at least one bench over threshold or
over the overhead budget, 2 = usage/environment error.
"""

import argparse
import glob
import json
import os
import subprocess
import sys

METRIC = "ops_per_sec"


def repo_root():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip()
    except (subprocess.CalledProcessError, OSError):
        return None


def baseline_for(root, ref, name):
    """The committed BENCH_<name>.json at `ref`, or None if absent."""
    show = subprocess.run(
        ["git", "show", f"{ref}:bench/BENCH_{name}.json"],
        capture_output=True, text=True, cwd=root,
    )
    if show.returncode != 0:
        return None
    try:
        return json.loads(show.stdout)
    except json.JSONDecodeError:
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results_dir", nargs="?", default=None,
                        help="directory of fresh BENCH_*.json "
                             "(default: <repo>/bench)")
    parser.add_argument("--threshold-pct", type=float, default=20.0,
                        help="max tolerated %s drop, percent" % METRIC)
    parser.add_argument("--overhead-budget-pct", type=float, default=3.0,
                        help="absolute budget for *_overhead_pct fields")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the baselines")
    args = parser.parse_args()

    root = repo_root()
    if root is None:
        print("check_bench: not inside a git checkout", file=sys.stderr)
        return 2
    results_dir = args.results_dir or os.path.join(root, "bench")

    paths = sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json")))
    if not paths:
        print(f"check_bench: no BENCH_*.json under {results_dir}",
              file=sys.stderr)
        return 2

    failed = []
    for path in paths:
        with open(path) as f:
            fresh = json.load(f)
        name = fresh.get("name") or os.path.basename(path)[6:-5]

        # Absolute overhead budget on the fresh run (negative values are
        # pairing noise in the instrumented rep's favour — fine).
        for field, value in sorted(fresh.items()):
            if not field.endswith("_overhead_pct"):
                continue
            try:
                overhead = float(value)
            except (TypeError, ValueError):
                continue
            if overhead > args.overhead_budget_pct:
                failed.append(f"{name}:{field}")
                print(f"  {name:<18} {field}: {overhead:+.2f}%  "
                      f"OVER BUDGET (> {args.overhead_budget_pct:g}%)")
            else:
                print(f"  {name:<18} {field}: {overhead:+.2f}%  "
                      f"within {args.overhead_budget_pct:g}% budget")

        baseline = baseline_for(root, args.ref, name)
        if baseline is None or METRIC not in baseline:
            print(f"  {name:<18} no committed baseline at {args.ref} — skip")
            continue
        base, cur = baseline[METRIC], fresh.get(METRIC, 0.0)
        if base <= 0:
            print(f"  {name:<18} baseline {METRIC} <= 0 — skip")
            continue
        delta_pct = (cur / base - 1.0) * 100.0
        verdict = "ok"
        if delta_pct < -args.threshold_pct:
            verdict = f"REGRESSION (>{args.threshold_pct:g}% drop)"
            failed.append(name)
        print(f"  {name:<18} {METRIC}: {base:>12.1f} -> {cur:>12.1f}  "
              f"({delta_pct:+.1f}%)  {verdict}")

    if failed:
        print(f"check_bench: FAILED — {', '.join(failed)}", file=sys.stderr)
        return 1
    print("check_bench: all benches within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
