file(REMOVE_RECURSE
  "CMakeFiles/tdstore_test.dir/tdstore_test.cc.o"
  "CMakeFiles/tdstore_test.dir/tdstore_test.cc.o.d"
  "tdstore_test"
  "tdstore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
