# Empty compiler generated dependencies file for tdstore_test.
# This may be replaced when dependencies are built.
