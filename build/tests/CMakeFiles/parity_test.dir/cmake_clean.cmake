file(REMOVE_RECURSE
  "CMakeFiles/parity_test.dir/parity_test.cc.o"
  "CMakeFiles/parity_test.dir/parity_test.cc.o.d"
  "parity_test"
  "parity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
