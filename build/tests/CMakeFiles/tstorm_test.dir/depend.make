# Empty dependencies file for tstorm_test.
# This may be replaced when dependencies are built.
