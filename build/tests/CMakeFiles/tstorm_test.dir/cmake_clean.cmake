file(REMOVE_RECURSE
  "CMakeFiles/tstorm_test.dir/tstorm_test.cc.o"
  "CMakeFiles/tstorm_test.dir/tstorm_test.cc.o.d"
  "tstorm_test"
  "tstorm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tstorm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
