file(REMOVE_RECURSE
  "CMakeFiles/itemcf_test.dir/itemcf_test.cc.o"
  "CMakeFiles/itemcf_test.dir/itemcf_test.cc.o.d"
  "itemcf_test"
  "itemcf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itemcf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
