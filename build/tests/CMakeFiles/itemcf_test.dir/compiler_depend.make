# Empty compiler generated dependencies file for itemcf_test.
# This may be replaced when dependencies are built.
