file(REMOVE_RECURSE
  "CMakeFiles/tdaccess_test.dir/tdaccess_test.cc.o"
  "CMakeFiles/tdaccess_test.dir/tdaccess_test.cc.o.d"
  "tdaccess_test"
  "tdaccess_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdaccess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
