# Empty dependencies file for tdaccess_test.
# This may be replaced when dependencies are built.
