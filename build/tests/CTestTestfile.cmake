# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tstorm_test "/root/repo/build/tests/tstorm_test")
set_tests_properties(tstorm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(xml_test "/root/repo/build/tests/xml_test")
set_tests_properties(xml_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tdaccess_test "/root/repo/build/tests/tdaccess_test")
set_tests_properties(tdaccess_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tdstore_test "/root/repo/build/tests/tdstore_test")
set_tests_properties(tdstore_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rating_test "/root/repo/build/tests/rating_test")
set_tests_properties(rating_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(itemcf_test "/root/repo/build/tests/itemcf_test")
set_tests_properties(itemcf_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(algorithms_test "/root/repo/build/tests/algorithms_test")
set_tests_properties(algorithms_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(topo_test "/root/repo/build/tests/topo_test")
set_tests_properties(topo_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/tests/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(parity_test "/root/repo/build/tests/parity_test")
set_tests_properties(parity_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;20;tr_add_test;/root/repo/tests/CMakeLists.txt;0;")
