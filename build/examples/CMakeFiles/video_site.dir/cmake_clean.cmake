file(REMOVE_RECURSE
  "CMakeFiles/video_site.dir/video_site.cpp.o"
  "CMakeFiles/video_site.dir/video_site.cpp.o.d"
  "video_site"
  "video_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
