# Empty dependencies file for video_site.
# This may be replaced when dependencies are built.
