file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_store.dir/ecommerce_store.cpp.o"
  "CMakeFiles/ecommerce_store.dir/ecommerce_store.cpp.o.d"
  "ecommerce_store"
  "ecommerce_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
