# Empty dependencies file for ecommerce_store.
# This may be replaced when dependencies are built.
