file(REMOVE_RECURSE
  "CMakeFiles/ad_ctr.dir/ad_ctr.cpp.o"
  "CMakeFiles/ad_ctr.dir/ad_ctr.cpp.o.d"
  "ad_ctr"
  "ad_ctr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_ctr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
