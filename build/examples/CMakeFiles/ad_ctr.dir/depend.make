# Empty dependencies file for ad_ctr.
# This may be replaced when dependencies are built.
