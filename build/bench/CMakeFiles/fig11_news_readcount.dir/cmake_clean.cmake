file(REMOVE_RECURSE
  "CMakeFiles/fig11_news_readcount.dir/fig11_news_readcount.cc.o"
  "CMakeFiles/fig11_news_readcount.dir/fig11_news_readcount.cc.o.d"
  "fig11_news_readcount"
  "fig11_news_readcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_news_readcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
