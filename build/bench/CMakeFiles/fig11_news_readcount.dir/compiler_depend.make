# Empty compiler generated dependencies file for fig11_news_readcount.
# This may be replaced when dependencies are built.
