# Empty dependencies file for ablate_combiner.
# This may be replaced when dependencies are built.
