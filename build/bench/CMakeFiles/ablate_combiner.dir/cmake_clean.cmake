file(REMOVE_RECURSE
  "CMakeFiles/ablate_combiner.dir/ablate_combiner.cc.o"
  "CMakeFiles/ablate_combiner.dir/ablate_combiner.cc.o.d"
  "ablate_combiner"
  "ablate_combiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_combiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
