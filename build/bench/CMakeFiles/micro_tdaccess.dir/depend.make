# Empty dependencies file for micro_tdaccess.
# This may be replaced when dependencies are built.
