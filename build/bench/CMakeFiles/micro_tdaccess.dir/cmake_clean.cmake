file(REMOVE_RECURSE
  "CMakeFiles/micro_tdaccess.dir/micro_tdaccess.cc.o"
  "CMakeFiles/micro_tdaccess.dir/micro_tdaccess.cc.o.d"
  "micro_tdaccess"
  "micro_tdaccess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tdaccess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
