# Empty dependencies file for ablate_userbased.
# This may be replaced when dependencies are built.
