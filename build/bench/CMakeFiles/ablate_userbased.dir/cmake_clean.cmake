file(REMOVE_RECURSE
  "CMakeFiles/ablate_userbased.dir/ablate_userbased.cc.o"
  "CMakeFiles/ablate_userbased.dir/ablate_userbased.cc.o.d"
  "ablate_userbased"
  "ablate_userbased.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_userbased.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
