file(REMOVE_RECURSE
  "CMakeFiles/micro_tstorm.dir/micro_tstorm.cc.o"
  "CMakeFiles/micro_tstorm.dir/micro_tstorm.cc.o.d"
  "micro_tstorm"
  "micro_tstorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tstorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
