# Empty compiler generated dependencies file for micro_tstorm.
# This may be replaced when dependencies are built.
