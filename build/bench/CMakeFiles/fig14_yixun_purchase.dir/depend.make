# Empty dependencies file for fig14_yixun_purchase.
# This may be replaced when dependencies are built.
