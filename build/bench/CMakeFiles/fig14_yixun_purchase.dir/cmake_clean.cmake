file(REMOVE_RECURSE
  "CMakeFiles/fig14_yixun_purchase.dir/fig14_yixun_purchase.cc.o"
  "CMakeFiles/fig14_yixun_purchase.dir/fig14_yixun_purchase.cc.o.d"
  "fig14_yixun_purchase"
  "fig14_yixun_purchase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_yixun_purchase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
