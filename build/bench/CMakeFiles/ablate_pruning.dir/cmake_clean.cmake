file(REMOVE_RECURSE
  "CMakeFiles/ablate_pruning.dir/ablate_pruning.cc.o"
  "CMakeFiles/ablate_pruning.dir/ablate_pruning.cc.o.d"
  "ablate_pruning"
  "ablate_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
