# Empty dependencies file for table1_overall.
# This may be replaced when dependencies are built.
