file(REMOVE_RECURSE
  "CMakeFiles/micro_tdstore.dir/micro_tdstore.cc.o"
  "CMakeFiles/micro_tdstore.dir/micro_tdstore.cc.o.d"
  "micro_tdstore"
  "micro_tdstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tdstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
