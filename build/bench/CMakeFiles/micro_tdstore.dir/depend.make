# Empty dependencies file for micro_tdstore.
# This may be replaced when dependencies are built.
