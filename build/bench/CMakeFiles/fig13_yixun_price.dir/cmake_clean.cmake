file(REMOVE_RECURSE
  "CMakeFiles/fig13_yixun_price.dir/fig13_yixun_price.cc.o"
  "CMakeFiles/fig13_yixun_price.dir/fig13_yixun_price.cc.o.d"
  "fig13_yixun_price"
  "fig13_yixun_price.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_yixun_price.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
