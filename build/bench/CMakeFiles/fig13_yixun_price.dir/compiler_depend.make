# Empty compiler generated dependencies file for fig13_yixun_price.
# This may be replaced when dependencies are built.
