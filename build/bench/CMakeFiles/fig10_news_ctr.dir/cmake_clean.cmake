file(REMOVE_RECURSE
  "CMakeFiles/fig10_news_ctr.dir/fig10_news_ctr.cc.o"
  "CMakeFiles/fig10_news_ctr.dir/fig10_news_ctr.cc.o.d"
  "fig10_news_ctr"
  "fig10_news_ctr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_news_ctr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
