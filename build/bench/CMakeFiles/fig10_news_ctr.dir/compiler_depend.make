# Empty compiler generated dependencies file for fig10_news_ctr.
# This may be replaced when dependencies are built.
