file(REMOVE_RECURSE
  "CMakeFiles/ablate_window.dir/ablate_window.cc.o"
  "CMakeFiles/ablate_window.dir/ablate_window.cc.o.d"
  "ablate_window"
  "ablate_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
