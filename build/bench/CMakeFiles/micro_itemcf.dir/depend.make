# Empty dependencies file for micro_itemcf.
# This may be replaced when dependencies are built.
