file(REMOVE_RECURSE
  "CMakeFiles/micro_itemcf.dir/micro_itemcf.cc.o"
  "CMakeFiles/micro_itemcf.dir/micro_itemcf.cc.o.d"
  "micro_itemcf"
  "micro_itemcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_itemcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
