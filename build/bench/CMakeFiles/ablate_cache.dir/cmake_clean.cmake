file(REMOVE_RECURSE
  "CMakeFiles/ablate_cache.dir/ablate_cache.cc.o"
  "CMakeFiles/ablate_cache.dir/ablate_cache.cc.o.d"
  "ablate_cache"
  "ablate_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
