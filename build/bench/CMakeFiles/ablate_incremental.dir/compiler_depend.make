# Empty compiler generated dependencies file for ablate_incremental.
# This may be replaced when dependencies are built.
