file(REMOVE_RECURSE
  "CMakeFiles/ablate_incremental.dir/ablate_incremental.cc.o"
  "CMakeFiles/ablate_incremental.dir/ablate_incremental.cc.o.d"
  "ablate_incremental"
  "ablate_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
