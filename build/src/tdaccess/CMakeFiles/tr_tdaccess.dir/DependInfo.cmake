
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tdaccess/cluster.cc" "src/tdaccess/CMakeFiles/tr_tdaccess.dir/cluster.cc.o" "gcc" "src/tdaccess/CMakeFiles/tr_tdaccess.dir/cluster.cc.o.d"
  "/root/repo/src/tdaccess/consumer.cc" "src/tdaccess/CMakeFiles/tr_tdaccess.dir/consumer.cc.o" "gcc" "src/tdaccess/CMakeFiles/tr_tdaccess.dir/consumer.cc.o.d"
  "/root/repo/src/tdaccess/data_server.cc" "src/tdaccess/CMakeFiles/tr_tdaccess.dir/data_server.cc.o" "gcc" "src/tdaccess/CMakeFiles/tr_tdaccess.dir/data_server.cc.o.d"
  "/root/repo/src/tdaccess/master.cc" "src/tdaccess/CMakeFiles/tr_tdaccess.dir/master.cc.o" "gcc" "src/tdaccess/CMakeFiles/tr_tdaccess.dir/master.cc.o.d"
  "/root/repo/src/tdaccess/producer.cc" "src/tdaccess/CMakeFiles/tr_tdaccess.dir/producer.cc.o" "gcc" "src/tdaccess/CMakeFiles/tr_tdaccess.dir/producer.cc.o.d"
  "/root/repo/src/tdaccess/segment_log.cc" "src/tdaccess/CMakeFiles/tr_tdaccess.dir/segment_log.cc.o" "gcc" "src/tdaccess/CMakeFiles/tr_tdaccess.dir/segment_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
