# Empty compiler generated dependencies file for tr_tdaccess.
# This may be replaced when dependencies are built.
