file(REMOVE_RECURSE
  "CMakeFiles/tr_tdaccess.dir/cluster.cc.o"
  "CMakeFiles/tr_tdaccess.dir/cluster.cc.o.d"
  "CMakeFiles/tr_tdaccess.dir/consumer.cc.o"
  "CMakeFiles/tr_tdaccess.dir/consumer.cc.o.d"
  "CMakeFiles/tr_tdaccess.dir/data_server.cc.o"
  "CMakeFiles/tr_tdaccess.dir/data_server.cc.o.d"
  "CMakeFiles/tr_tdaccess.dir/master.cc.o"
  "CMakeFiles/tr_tdaccess.dir/master.cc.o.d"
  "CMakeFiles/tr_tdaccess.dir/producer.cc.o"
  "CMakeFiles/tr_tdaccess.dir/producer.cc.o.d"
  "CMakeFiles/tr_tdaccess.dir/segment_log.cc.o"
  "CMakeFiles/tr_tdaccess.dir/segment_log.cc.o.d"
  "libtr_tdaccess.a"
  "libtr_tdaccess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_tdaccess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
