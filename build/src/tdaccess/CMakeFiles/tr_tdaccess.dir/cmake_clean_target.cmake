file(REMOVE_RECURSE
  "libtr_tdaccess.a"
)
