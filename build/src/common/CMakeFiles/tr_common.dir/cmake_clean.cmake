file(REMOVE_RECURSE
  "CMakeFiles/tr_common.dir/crc32.cc.o"
  "CMakeFiles/tr_common.dir/crc32.cc.o.d"
  "CMakeFiles/tr_common.dir/logging.cc.o"
  "CMakeFiles/tr_common.dir/logging.cc.o.d"
  "CMakeFiles/tr_common.dir/status.cc.o"
  "CMakeFiles/tr_common.dir/status.cc.o.d"
  "CMakeFiles/tr_common.dir/strings.cc.o"
  "CMakeFiles/tr_common.dir/strings.cc.o.d"
  "libtr_common.a"
  "libtr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
