# Empty dependencies file for tr_topo.
# This may be replaced when dependencies are built.
