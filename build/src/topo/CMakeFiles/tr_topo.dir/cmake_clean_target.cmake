file(REMOVE_RECURSE
  "libtr_topo.a"
)
