file(REMOVE_RECURSE
  "CMakeFiles/tr_topo.dir/action_codec.cc.o"
  "CMakeFiles/tr_topo.dir/action_codec.cc.o.d"
  "CMakeFiles/tr_topo.dir/blob_codec.cc.o"
  "CMakeFiles/tr_topo.dir/blob_codec.cc.o.d"
  "CMakeFiles/tr_topo.dir/bolts.cc.o"
  "CMakeFiles/tr_topo.dir/bolts.cc.o.d"
  "CMakeFiles/tr_topo.dir/query.cc.o"
  "CMakeFiles/tr_topo.dir/query.cc.o.d"
  "CMakeFiles/tr_topo.dir/spouts.cc.o"
  "CMakeFiles/tr_topo.dir/spouts.cc.o.d"
  "CMakeFiles/tr_topo.dir/store_cache.cc.o"
  "CMakeFiles/tr_topo.dir/store_cache.cc.o.d"
  "CMakeFiles/tr_topo.dir/topology_factory.cc.o"
  "CMakeFiles/tr_topo.dir/topology_factory.cc.o.d"
  "libtr_topo.a"
  "libtr_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
