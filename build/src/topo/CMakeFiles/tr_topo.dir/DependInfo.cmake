
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/action_codec.cc" "src/topo/CMakeFiles/tr_topo.dir/action_codec.cc.o" "gcc" "src/topo/CMakeFiles/tr_topo.dir/action_codec.cc.o.d"
  "/root/repo/src/topo/blob_codec.cc" "src/topo/CMakeFiles/tr_topo.dir/blob_codec.cc.o" "gcc" "src/topo/CMakeFiles/tr_topo.dir/blob_codec.cc.o.d"
  "/root/repo/src/topo/bolts.cc" "src/topo/CMakeFiles/tr_topo.dir/bolts.cc.o" "gcc" "src/topo/CMakeFiles/tr_topo.dir/bolts.cc.o.d"
  "/root/repo/src/topo/query.cc" "src/topo/CMakeFiles/tr_topo.dir/query.cc.o" "gcc" "src/topo/CMakeFiles/tr_topo.dir/query.cc.o.d"
  "/root/repo/src/topo/spouts.cc" "src/topo/CMakeFiles/tr_topo.dir/spouts.cc.o" "gcc" "src/topo/CMakeFiles/tr_topo.dir/spouts.cc.o.d"
  "/root/repo/src/topo/store_cache.cc" "src/topo/CMakeFiles/tr_topo.dir/store_cache.cc.o" "gcc" "src/topo/CMakeFiles/tr_topo.dir/store_cache.cc.o.d"
  "/root/repo/src/topo/topology_factory.cc" "src/topo/CMakeFiles/tr_topo.dir/topology_factory.cc.o" "gcc" "src/topo/CMakeFiles/tr_topo.dir/topology_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tstorm/CMakeFiles/tr_tstorm.dir/DependInfo.cmake"
  "/root/repo/build/src/tdaccess/CMakeFiles/tr_tdaccess.dir/DependInfo.cmake"
  "/root/repo/build/src/tdstore/CMakeFiles/tr_tdstore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
