
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tdstore/client.cc" "src/tdstore/CMakeFiles/tr_tdstore.dir/client.cc.o" "gcc" "src/tdstore/CMakeFiles/tr_tdstore.dir/client.cc.o.d"
  "/root/repo/src/tdstore/cluster.cc" "src/tdstore/CMakeFiles/tr_tdstore.dir/cluster.cc.o" "gcc" "src/tdstore/CMakeFiles/tr_tdstore.dir/cluster.cc.o.d"
  "/root/repo/src/tdstore/config_server.cc" "src/tdstore/CMakeFiles/tr_tdstore.dir/config_server.cc.o" "gcc" "src/tdstore/CMakeFiles/tr_tdstore.dir/config_server.cc.o.d"
  "/root/repo/src/tdstore/data_server.cc" "src/tdstore/CMakeFiles/tr_tdstore.dir/data_server.cc.o" "gcc" "src/tdstore/CMakeFiles/tr_tdstore.dir/data_server.cc.o.d"
  "/root/repo/src/tdstore/engine.cc" "src/tdstore/CMakeFiles/tr_tdstore.dir/engine.cc.o" "gcc" "src/tdstore/CMakeFiles/tr_tdstore.dir/engine.cc.o.d"
  "/root/repo/src/tdstore/fdb_engine.cc" "src/tdstore/CMakeFiles/tr_tdstore.dir/fdb_engine.cc.o" "gcc" "src/tdstore/CMakeFiles/tr_tdstore.dir/fdb_engine.cc.o.d"
  "/root/repo/src/tdstore/ldb_engine.cc" "src/tdstore/CMakeFiles/tr_tdstore.dir/ldb_engine.cc.o" "gcc" "src/tdstore/CMakeFiles/tr_tdstore.dir/ldb_engine.cc.o.d"
  "/root/repo/src/tdstore/mdb_engine.cc" "src/tdstore/CMakeFiles/tr_tdstore.dir/mdb_engine.cc.o" "gcc" "src/tdstore/CMakeFiles/tr_tdstore.dir/mdb_engine.cc.o.d"
  "/root/repo/src/tdstore/rdb_engine.cc" "src/tdstore/CMakeFiles/tr_tdstore.dir/rdb_engine.cc.o" "gcc" "src/tdstore/CMakeFiles/tr_tdstore.dir/rdb_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
