# Empty compiler generated dependencies file for tr_tdstore.
# This may be replaced when dependencies are built.
