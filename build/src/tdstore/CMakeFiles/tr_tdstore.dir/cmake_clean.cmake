file(REMOVE_RECURSE
  "CMakeFiles/tr_tdstore.dir/client.cc.o"
  "CMakeFiles/tr_tdstore.dir/client.cc.o.d"
  "CMakeFiles/tr_tdstore.dir/cluster.cc.o"
  "CMakeFiles/tr_tdstore.dir/cluster.cc.o.d"
  "CMakeFiles/tr_tdstore.dir/config_server.cc.o"
  "CMakeFiles/tr_tdstore.dir/config_server.cc.o.d"
  "CMakeFiles/tr_tdstore.dir/data_server.cc.o"
  "CMakeFiles/tr_tdstore.dir/data_server.cc.o.d"
  "CMakeFiles/tr_tdstore.dir/engine.cc.o"
  "CMakeFiles/tr_tdstore.dir/engine.cc.o.d"
  "CMakeFiles/tr_tdstore.dir/fdb_engine.cc.o"
  "CMakeFiles/tr_tdstore.dir/fdb_engine.cc.o.d"
  "CMakeFiles/tr_tdstore.dir/ldb_engine.cc.o"
  "CMakeFiles/tr_tdstore.dir/ldb_engine.cc.o.d"
  "CMakeFiles/tr_tdstore.dir/mdb_engine.cc.o"
  "CMakeFiles/tr_tdstore.dir/mdb_engine.cc.o.d"
  "CMakeFiles/tr_tdstore.dir/rdb_engine.cc.o"
  "CMakeFiles/tr_tdstore.dir/rdb_engine.cc.o.d"
  "libtr_tdstore.a"
  "libtr_tdstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_tdstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
