file(REMOVE_RECURSE
  "libtr_tdstore.a"
)
