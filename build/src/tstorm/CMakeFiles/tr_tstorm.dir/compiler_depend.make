# Empty compiler generated dependencies file for tr_tstorm.
# This may be replaced when dependencies are built.
