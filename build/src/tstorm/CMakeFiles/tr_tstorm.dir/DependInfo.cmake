
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tstorm/cluster.cc" "src/tstorm/CMakeFiles/tr_tstorm.dir/cluster.cc.o" "gcc" "src/tstorm/CMakeFiles/tr_tstorm.dir/cluster.cc.o.d"
  "/root/repo/src/tstorm/config.cc" "src/tstorm/CMakeFiles/tr_tstorm.dir/config.cc.o" "gcc" "src/tstorm/CMakeFiles/tr_tstorm.dir/config.cc.o.d"
  "/root/repo/src/tstorm/topology.cc" "src/tstorm/CMakeFiles/tr_tstorm.dir/topology.cc.o" "gcc" "src/tstorm/CMakeFiles/tr_tstorm.dir/topology.cc.o.d"
  "/root/repo/src/tstorm/xml.cc" "src/tstorm/CMakeFiles/tr_tstorm.dir/xml.cc.o" "gcc" "src/tstorm/CMakeFiles/tr_tstorm.dir/xml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
