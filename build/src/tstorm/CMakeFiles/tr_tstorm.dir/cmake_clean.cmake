file(REMOVE_RECURSE
  "CMakeFiles/tr_tstorm.dir/cluster.cc.o"
  "CMakeFiles/tr_tstorm.dir/cluster.cc.o.d"
  "CMakeFiles/tr_tstorm.dir/config.cc.o"
  "CMakeFiles/tr_tstorm.dir/config.cc.o.d"
  "CMakeFiles/tr_tstorm.dir/topology.cc.o"
  "CMakeFiles/tr_tstorm.dir/topology.cc.o.d"
  "CMakeFiles/tr_tstorm.dir/xml.cc.o"
  "CMakeFiles/tr_tstorm.dir/xml.cc.o.d"
  "libtr_tstorm.a"
  "libtr_tstorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_tstorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
