file(REMOVE_RECURSE
  "libtr_tstorm.a"
)
