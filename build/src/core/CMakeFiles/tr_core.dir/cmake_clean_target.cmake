file(REMOVE_RECURSE
  "libtr_core.a"
)
