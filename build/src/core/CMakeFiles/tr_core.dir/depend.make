# Empty dependencies file for tr_core.
# This may be replaced when dependencies are built.
