
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assoc.cc" "src/core/CMakeFiles/tr_core.dir/assoc.cc.o" "gcc" "src/core/CMakeFiles/tr_core.dir/assoc.cc.o.d"
  "/root/repo/src/core/content.cc" "src/core/CMakeFiles/tr_core.dir/content.cc.o" "gcc" "src/core/CMakeFiles/tr_core.dir/content.cc.o.d"
  "/root/repo/src/core/ctr.cc" "src/core/CMakeFiles/tr_core.dir/ctr.cc.o" "gcc" "src/core/CMakeFiles/tr_core.dir/ctr.cc.o.d"
  "/root/repo/src/core/demographic.cc" "src/core/CMakeFiles/tr_core.dir/demographic.cc.o" "gcc" "src/core/CMakeFiles/tr_core.dir/demographic.cc.o.d"
  "/root/repo/src/core/itemcf/basic_cf.cc" "src/core/CMakeFiles/tr_core.dir/itemcf/basic_cf.cc.o" "gcc" "src/core/CMakeFiles/tr_core.dir/itemcf/basic_cf.cc.o.d"
  "/root/repo/src/core/itemcf/item_cf.cc" "src/core/CMakeFiles/tr_core.dir/itemcf/item_cf.cc.o" "gcc" "src/core/CMakeFiles/tr_core.dir/itemcf/item_cf.cc.o.d"
  "/root/repo/src/core/itemcf/user_cf.cc" "src/core/CMakeFiles/tr_core.dir/itemcf/user_cf.cc.o" "gcc" "src/core/CMakeFiles/tr_core.dir/itemcf/user_cf.cc.o.d"
  "/root/repo/src/core/itemcf/window_counts.cc" "src/core/CMakeFiles/tr_core.dir/itemcf/window_counts.cc.o" "gcc" "src/core/CMakeFiles/tr_core.dir/itemcf/window_counts.cc.o.d"
  "/root/repo/src/core/rating.cc" "src/core/CMakeFiles/tr_core.dir/rating.cc.o" "gcc" "src/core/CMakeFiles/tr_core.dir/rating.cc.o.d"
  "/root/repo/src/core/recommender.cc" "src/core/CMakeFiles/tr_core.dir/recommender.cc.o" "gcc" "src/core/CMakeFiles/tr_core.dir/recommender.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
