file(REMOVE_RECURSE
  "CMakeFiles/tr_core.dir/assoc.cc.o"
  "CMakeFiles/tr_core.dir/assoc.cc.o.d"
  "CMakeFiles/tr_core.dir/content.cc.o"
  "CMakeFiles/tr_core.dir/content.cc.o.d"
  "CMakeFiles/tr_core.dir/ctr.cc.o"
  "CMakeFiles/tr_core.dir/ctr.cc.o.d"
  "CMakeFiles/tr_core.dir/demographic.cc.o"
  "CMakeFiles/tr_core.dir/demographic.cc.o.d"
  "CMakeFiles/tr_core.dir/itemcf/basic_cf.cc.o"
  "CMakeFiles/tr_core.dir/itemcf/basic_cf.cc.o.d"
  "CMakeFiles/tr_core.dir/itemcf/item_cf.cc.o"
  "CMakeFiles/tr_core.dir/itemcf/item_cf.cc.o.d"
  "CMakeFiles/tr_core.dir/itemcf/user_cf.cc.o"
  "CMakeFiles/tr_core.dir/itemcf/user_cf.cc.o.d"
  "CMakeFiles/tr_core.dir/itemcf/window_counts.cc.o"
  "CMakeFiles/tr_core.dir/itemcf/window_counts.cc.o.d"
  "CMakeFiles/tr_core.dir/rating.cc.o"
  "CMakeFiles/tr_core.dir/rating.cc.o.d"
  "CMakeFiles/tr_core.dir/recommender.cc.o"
  "CMakeFiles/tr_core.dir/recommender.cc.o.d"
  "libtr_core.a"
  "libtr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
