file(REMOVE_RECURSE
  "libtr_engine.a"
)
