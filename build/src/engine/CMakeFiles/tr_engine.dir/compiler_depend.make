# Empty compiler generated dependencies file for tr_engine.
# This may be replaced when dependencies are built.
