file(REMOVE_RECURSE
  "CMakeFiles/tr_engine.dir/monitor.cc.o"
  "CMakeFiles/tr_engine.dir/monitor.cc.o.d"
  "CMakeFiles/tr_engine.dir/offline.cc.o"
  "CMakeFiles/tr_engine.dir/offline.cc.o.d"
  "CMakeFiles/tr_engine.dir/tencentrec.cc.o"
  "CMakeFiles/tr_engine.dir/tencentrec.cc.o.d"
  "libtr_engine.a"
  "libtr_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
