file(REMOVE_RECURSE
  "CMakeFiles/tr_sim.dir/abtest.cc.o"
  "CMakeFiles/tr_sim.dir/abtest.cc.o.d"
  "CMakeFiles/tr_sim.dir/apps.cc.o"
  "CMakeFiles/tr_sim.dir/apps.cc.o.d"
  "CMakeFiles/tr_sim.dir/arms.cc.o"
  "CMakeFiles/tr_sim.dir/arms.cc.o.d"
  "CMakeFiles/tr_sim.dir/world.cc.o"
  "CMakeFiles/tr_sim.dir/world.cc.o.d"
  "libtr_sim.a"
  "libtr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
