
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/abtest.cc" "src/sim/CMakeFiles/tr_sim.dir/abtest.cc.o" "gcc" "src/sim/CMakeFiles/tr_sim.dir/abtest.cc.o.d"
  "/root/repo/src/sim/apps.cc" "src/sim/CMakeFiles/tr_sim.dir/apps.cc.o" "gcc" "src/sim/CMakeFiles/tr_sim.dir/apps.cc.o.d"
  "/root/repo/src/sim/arms.cc" "src/sim/CMakeFiles/tr_sim.dir/arms.cc.o" "gcc" "src/sim/CMakeFiles/tr_sim.dir/arms.cc.o.d"
  "/root/repo/src/sim/world.cc" "src/sim/CMakeFiles/tr_sim.dir/world.cc.o" "gcc" "src/sim/CMakeFiles/tr_sim.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
