# Empty compiler generated dependencies file for tr_sim.
# This may be replaced when dependencies are built.
