#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <unistd.h>
#include <filesystem>

#include "tdaccess/cluster.h"
#include "tdaccess/consumer.h"
#include "tdaccess/producer.h"
#include "tdaccess/segment_log.h"

namespace tencentrec::tdaccess {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("tdaccess_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  static int counter_;
  std::filesystem::path path_;
};
int TempDir::counter_ = 0;

Message Msg(const std::string& key, const std::string& payload,
            EventTime ts = 0) {
  Message m;
  m.key = key;
  m.payload = payload;
  m.timestamp = ts;
  return m;
}

// --- SegmentLog -------------------------------------------------------------

TEST(SegmentLogTest, AppendReadMemoryOnly) {
  SegmentLog log;
  ASSERT_TRUE(log.Open("").ok());
  for (int i = 0; i < 10; ++i) {
    auto off = log.Append(Msg("k" + std::to_string(i), "v", i));
    ASSERT_TRUE(off.ok());
    EXPECT_EQ(*off, i);
  }
  EXPECT_EQ(log.EndOffset(), 10);
  auto batch = log.Read(3, 4);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 4u);
  EXPECT_EQ((*batch)[0].key, "k3");
  EXPECT_EQ((*batch)[0].timestamp, 3);
}

TEST(SegmentLogTest, ReadPastEndReturnsFewer) {
  SegmentLog log;
  ASSERT_TRUE(log.Open("").ok());
  ASSERT_TRUE(log.Append(Msg("a", "1")).ok());
  auto batch = log.Read(0, 100);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 1u);
  auto empty = log.Read(5, 10);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(log.Read(-1, 1).ok());
}

TEST(SegmentLogTest, RecoversFromDisk) {
  TempDir dir;
  const std::string path = dir.path() + "/p0.log";
  {
    SegmentLog log;
    ASSERT_TRUE(log.Open(path).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(log.Append(Msg("key" + std::to_string(i),
                                 "payload" + std::to_string(i), i * 100))
                      .ok());
    }
  }
  SegmentLog recovered;
  ASSERT_TRUE(recovered.Open(path).ok());
  EXPECT_EQ(recovered.EndOffset(), 5);
  auto batch = recovered.Read(0, 10);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 5u);
  EXPECT_EQ((*batch)[4].payload, "payload4");
  EXPECT_EQ((*batch)[4].timestamp, 400);
  // And appending continues at the right offset.
  auto off = recovered.Append(Msg("k5", "p5"));
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*off, 5);
}

TEST(SegmentLogTest, TruncatesTornTail) {
  TempDir dir;
  const std::string path = dir.path() + "/torn.log";
  {
    SegmentLog log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(log.Append(Msg("good", "record")).ok());
    ASSERT_TRUE(log.Append(Msg("tail", "to-be-torn")).ok());
  }
  // Chop bytes off the end (simulated crash mid-write).
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 5);

  SegmentLog recovered;
  ASSERT_TRUE(recovered.Open(path).ok());
  EXPECT_EQ(recovered.EndOffset(), 1);  // torn record dropped
  auto batch = recovered.Read(0, 10);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_EQ((*batch)[0].key, "good");
}

TEST(SegmentLogTest, DetectsCorruptedTail) {
  TempDir dir;
  const std::string path = dir.path() + "/corrupt.log";
  {
    SegmentLog log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(log.Append(Msg("first", "ok")).ok());
    ASSERT_TRUE(log.Append(Msg("second", "will corrupt")).ok());
  }
  // Flip a byte inside the second record's payload.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -3, SEEK_END);
    int c = std::fgetc(f);
    std::fseek(f, -3, SEEK_END);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
  }
  SegmentLog recovered;
  ASSERT_TRUE(recovered.Open(path).ok());
  EXPECT_EQ(recovered.EndOffset(), 1);
}

// --- Master / topics --------------------------------------------------------

TEST(MasterTest, CreateTopicBalancesPartitions) {
  Cluster cluster(Cluster::Options{.num_data_servers = 3, .data_dir = ""});
  ASSERT_TRUE(cluster.master().CreateTopic("t", 6).ok());
  auto route = cluster.master().GetRoute("t");
  ASSERT_TRUE(route.ok());
  ASSERT_EQ(route->partitions.size(), 6u);
  // Round-robin: two partitions per server.
  std::map<int, int> per_server;
  for (const auto& pa : route->partitions) ++per_server[pa.server_id];
  for (const auto& [server, count] : per_server) EXPECT_EQ(count, 2);
}

TEST(MasterTest, DuplicateTopicRejected) {
  Cluster cluster(Cluster::Options{.num_data_servers = 1, .data_dir = ""});
  ASSERT_TRUE(cluster.master().CreateTopic("t", 2).ok());
  EXPECT_TRUE(cluster.master().CreateTopic("t", 2).IsAlreadyExists());
  EXPECT_FALSE(cluster.master().CreateTopic("u", 0).ok());
  EXPECT_TRUE(cluster.master().GetRoute("missing").status().IsNotFound());
}

// --- Producer / Consumer ----------------------------------------------------

TEST(ProduceConsumeTest, RoundTrip) {
  Cluster cluster(Cluster::Options{.num_data_servers = 2, .data_dir = ""});
  ASSERT_TRUE(cluster.master().CreateTopic("actions", 4).ok());

  Producer producer(&cluster, "actions");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        producer.Send("user" + std::to_string(i % 10), "payload", i).ok());
  }
  EXPECT_EQ(producer.sent(), 100);

  Consumer consumer(&cluster, "actions", "g1", "m1");
  ASSERT_TRUE(consumer.Subscribe().ok());
  EXPECT_EQ(consumer.assigned_partitions().size(), 4u);

  size_t total = 0;
  while (true) {
    auto batch = consumer.Poll(32);
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) break;
    total += batch->size();
  }
  EXPECT_EQ(total, 100u);
  auto lag = consumer.Lag();
  ASSERT_TRUE(lag.ok());
  EXPECT_EQ(*lag, 0);
}

TEST(ProduceConsumeTest, SameKeySamePartitionInOrder) {
  Cluster cluster(Cluster::Options{.num_data_servers = 2, .data_dir = ""});
  ASSERT_TRUE(cluster.master().CreateTopic("t", 4).ok());
  Producer producer(&cluster, "t");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(producer.Send("samekey", std::to_string(i), i).ok());
  }
  Consumer consumer(&cluster, "t", "g", "m");
  ASSERT_TRUE(consumer.Subscribe().ok());
  std::vector<int> order;
  int partition = -1;
  while (true) {
    auto batch = consumer.Poll(64);
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) break;
    for (const auto& cm : *batch) {
      if (partition == -1) partition = cm.partition;
      EXPECT_EQ(cm.partition, partition);  // all on one partition
      order.push_back(std::stoi(cm.message.payload));
    }
  }
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ProduceConsumeTest, CommitAndResume) {
  Cluster cluster(Cluster::Options{.num_data_servers = 1, .data_dir = ""});
  ASSERT_TRUE(cluster.master().CreateTopic("t", 2).ok());
  Producer producer(&cluster, "t");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(producer.Send("k" + std::to_string(i), "x", i).ok());
  }
  {
    Consumer first(&cluster, "t", "g", "m1");
    ASSERT_TRUE(first.Subscribe().ok());
    auto batch = first.Poll(30);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), 30u);
    ASSERT_TRUE(first.Commit().ok());
  }  // leaves group
  Consumer second(&cluster, "t", "g", "m2");
  ASSERT_TRUE(second.Subscribe().ok());
  size_t rest = 0;
  while (true) {
    auto batch = second.Poll(64);
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) break;
    rest += batch->size();
  }
  EXPECT_EQ(rest, 20u);  // resumes from committed offsets
}

TEST(ProduceConsumeTest, SeekToBeginningReplaysHistory) {
  Cluster cluster(Cluster::Options{.num_data_servers = 1, .data_dir = ""});
  ASSERT_TRUE(cluster.master().CreateTopic("t", 1).ok());
  Producer producer(&cluster, "t");
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(producer.Send("k", "x", i).ok());

  Consumer consumer(&cluster, "t", "g", "m");
  ASSERT_TRUE(consumer.Subscribe().ok());
  auto first = consumer.Poll(100);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 10u);
  // The data servers cached everything on disk/log; replay is possible.
  ASSERT_TRUE(consumer.SeekToBeginning().ok());
  auto again = consumer.Poll(100);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 10u);
}

TEST(ProduceConsumeTest, GroupRebalanceSplitsPartitions) {
  Cluster cluster(Cluster::Options{.num_data_servers = 2, .data_dir = ""});
  ASSERT_TRUE(cluster.master().CreateTopic("t", 4).ok());
  Consumer c1(&cluster, "t", "g", "m1");
  ASSERT_TRUE(c1.Subscribe().ok());
  EXPECT_EQ(c1.assigned_partitions().size(), 4u);

  Consumer c2(&cluster, "t", "g", "m2");
  ASSERT_TRUE(c2.Subscribe().ok());
  // After rebalance both see 2 (c1 discovers on next poll).
  Producer producer(&cluster, "t");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(producer.Send(std::to_string(i), "x", i).ok());
  }
  size_t n1 = 0, n2 = 0;
  while (true) {
    auto b1 = c1.Poll(16);
    auto b2 = c2.Poll(16);
    ASSERT_TRUE(b1.ok() && b2.ok());
    if (b1->empty() && b2->empty()) break;
    n1 += b1->size();
    n2 += b2->size();
  }
  EXPECT_EQ(n1 + n2, 8u);
  EXPECT_EQ(c1.assigned_partitions().size(), 2u);
  EXPECT_EQ(c2.assigned_partitions().size(), 2u);
  EXPECT_GT(n1, 0u);
  EXPECT_GT(n2, 0u);
}

TEST(ProduceConsumeTest, DifferentGroupsIndependent) {
  Cluster cluster(Cluster::Options{.num_data_servers = 1, .data_dir = ""});
  ASSERT_TRUE(cluster.master().CreateTopic("t", 2).ok());
  Producer producer(&cluster, "t");
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(producer.Send("k", "x", i).ok());
  Consumer a(&cluster, "t", "ga", "m");
  Consumer b(&cluster, "t", "gb", "m");
  ASSERT_TRUE(a.Subscribe().ok());
  ASSERT_TRUE(b.Subscribe().ok());
  auto ba = a.Poll(100);
  auto bb = b.Poll(100);
  ASSERT_TRUE(ba.ok() && bb.ok());
  EXPECT_EQ(ba->size(), 10u);
  EXPECT_EQ(bb->size(), 10u);  // both groups get the full stream
}

// --- failure handling -------------------------------------------------------

TEST(FailureTest, MasterFailoverKeepsState) {
  Cluster cluster(Cluster::Options{.num_data_servers = 2, .data_dir = ""});
  ASSERT_TRUE(cluster.master().CreateTopic("t", 4).ok());
  ASSERT_TRUE(cluster.FailActiveMaster().ok());
  // The standby has the topic registry.
  auto route = cluster.master().GetRoute("t");
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->partitions.size(), 4u);
  // New topics can still be created; second failover impossible.
  ASSERT_TRUE(cluster.master().CreateTopic("t2", 2).ok());
  EXPECT_FALSE(cluster.FailActiveMaster().ok());
}

TEST(FailureTest, DownDataServerReturnsUnavailable) {
  Cluster cluster(Cluster::Options{.num_data_servers = 1, .data_dir = ""});
  ASSERT_TRUE(cluster.master().CreateTopic("t", 1).ok());
  Producer producer(&cluster, "t");
  ASSERT_TRUE(producer.Send("k", "x", 0).ok());
  cluster.data_server(0)->SetDown(true);
  EXPECT_TRUE(producer.Send("k", "x", 1).IsUnavailable());
  cluster.data_server(0)->SetDown(false);
  EXPECT_TRUE(producer.Send("k", "x", 2).ok());
}

TEST(FailureTest, ConsumerSkipsDownedServer) {
  Cluster cluster(Cluster::Options{.num_data_servers = 2, .data_dir = ""});
  ASSERT_TRUE(cluster.master().CreateTopic("t", 2).ok());
  Producer producer(&cluster, "t");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(producer.Send(std::to_string(i), "x", i).ok());
  }
  cluster.data_server(0)->SetDown(true);
  Consumer consumer(&cluster, "t", "g", "m");
  ASSERT_TRUE(consumer.Subscribe().ok());
  auto batch = consumer.Poll(100);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_GT(batch->size(), 0u);   // partitions on the live server
  EXPECT_LT(batch->size(), 10u);  // downed server's partition skipped
}

TEST(ProduceConsumeTest, EmptyKeyRoundRobinsAcrossPartitions) {
  Cluster cluster(Cluster::Options{.num_data_servers = 2, .data_dir = ""});
  ASSERT_TRUE(cluster.master().CreateTopic("t", 4).ok());
  Producer producer(&cluster, "t");
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(producer.Send("", "payload", i).ok());
  }
  Consumer consumer(&cluster, "t", "g", "m");
  ASSERT_TRUE(consumer.Subscribe().ok());
  std::map<int, int> per_partition;
  while (true) {
    auto batch = consumer.Poll(64);
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) break;
    for (const auto& cm : *batch) ++per_partition[cm.partition];
  }
  ASSERT_EQ(per_partition.size(), 4u);
  for (const auto& [partition, count] : per_partition) {
    EXPECT_EQ(count, 10);  // perfect round-robin
  }
}

TEST(FailureTest, ConsumptionContinuesAcrossMasterFailover) {
  Cluster cluster(Cluster::Options{.num_data_servers = 2, .data_dir = ""});
  ASSERT_TRUE(cluster.master().CreateTopic("t", 2).ok());
  Producer producer(&cluster, "t");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(producer.Send("k" + std::to_string(i), "x", i).ok());
  }
  Consumer consumer(&cluster, "t", "g", "m");
  ASSERT_TRUE(consumer.Subscribe().ok());
  auto first = consumer.Poll(10);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(consumer.Commit().ok());

  // The active master dies mid-consumption; the standby holds the group
  // state (membership, offsets) and consumption resumes seamlessly.
  ASSERT_TRUE(cluster.FailActiveMaster().ok());
  size_t rest = first->size();
  while (true) {
    auto batch = consumer.Poll(10);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch->empty()) break;
    rest += batch->size();
  }
  EXPECT_EQ(rest, 20u);
  ASSERT_TRUE(consumer.Commit().ok());
  auto lag = consumer.Lag();
  ASSERT_TRUE(lag.ok());
  EXPECT_EQ(*lag, 0);
}

TEST(SegmentLogTest, DoubleOpenRejected) {
  SegmentLog log;
  ASSERT_TRUE(log.Open("").ok());
  EXPECT_TRUE(log.Open("").IsFailedPrecondition());
}

}  // namespace
}  // namespace tencentrec::tdaccess
