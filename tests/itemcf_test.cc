#include <gtest/gtest.h>

#include "common/random.h"
#include "common/topk.h"
#include "core/itemcf/basic_cf.h"
#include "core/itemcf/item_cf.h"

namespace tencentrec::core {
namespace {

UserAction Act(UserId user, ItemId item, ActionType type, EventTime ts) {
  UserAction a;
  a.user = user;
  a.item = item;
  a.action = type;
  a.timestamp = ts;
  return a;
}

// --- WindowedCounts (Eq. 6–10) -----------------------------------------------

TEST(WindowedCountsTest, CumulativeAccumulates) {
  WindowedCounts counts(Hours(1), /*window_sessions=*/0);
  counts.AddItem(1, 2.0, Hours(0));
  counts.AddItem(1, 3.0, Days(10));  // never expires in cumulative mode
  EXPECT_DOUBLE_EQ(counts.ItemCount(1), 5.0);
  counts.AddPair(1, 2, 1.5, Days(10));
  EXPECT_DOUBLE_EQ(counts.PairCount(1, 2), 1.5);
  EXPECT_DOUBLE_EQ(counts.PairCount(2, 1), 1.5);  // symmetric key
}

TEST(WindowedCountsTest, SimilarityFormula) {
  WindowedCounts counts(Hours(1), 0);
  counts.AddItem(1, 4.0, 0);
  counts.AddItem(2, 9.0, 0);
  counts.AddPair(1, 2, 3.0, 0);
  // Eq. 5: 3 / (√4·√9) = 0.5.
  EXPECT_DOUBLE_EQ(counts.Similarity(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(counts.Similarity(2, 1), 0.5);
  EXPECT_DOUBLE_EQ(counts.Similarity(1, 3), 0.0);  // unknown item
}

TEST(WindowedCountsTest, WindowExpiresOldSessions) {
  // 1-hour sessions, window of 2 sessions.
  WindowedCounts counts(Hours(1), 2);
  counts.AddItem(1, 1.0, Hours(0));
  counts.AddItem(1, 2.0, Hours(1));
  EXPECT_DOUBLE_EQ(counts.ItemCount(1), 3.0);  // both sessions live
  counts.AddItem(1, 4.0, Hours(2));            // session 0 expires
  EXPECT_DOUBLE_EQ(counts.ItemCount(1), 6.0);
  counts.AdvanceTo(Hours(5));  // everything expires
  EXPECT_DOUBLE_EQ(counts.ItemCount(1), 0.0);
  EXPECT_EQ(counts.NumSessions(), 0u);
}

TEST(WindowedCountsTest, PairCountsExpireTogether) {
  WindowedCounts counts(Hours(1), 2);
  counts.AddItem(1, 1.0, Hours(0));
  counts.AddItem(2, 1.0, Hours(0));
  counts.AddPair(1, 2, 1.0, Hours(0));
  EXPECT_GT(counts.Similarity(1, 2), 0.0);
  counts.AdvanceTo(Hours(3));
  EXPECT_DOUBLE_EQ(counts.Similarity(1, 2), 0.0);
}

TEST(WindowedCountsTest, LateInWindowDataLandsInItsOwnSession) {
  // Late-but-in-window events must credit their own session, so they expire
  // with it — not with whatever session happened to be newest at arrival.
  WindowedCounts counts(Hours(1), /*window_sessions=*/3);
  counts.AddItem(1, 1.0, Hours(2));  // session 2
  counts.AddItem(1, 4.0, Hours(0));  // late: session 0, still in window
  EXPECT_DOUBLE_EQ(counts.ItemCount(1), 5.0);
  EXPECT_EQ(counts.NumSessions(), 2u);
  counts.AdvanceTo(Hours(3));  // window = {1,2,3}: session 0 expires alone
  EXPECT_DOUBLE_EQ(counts.ItemCount(1), 1.0);
}

TEST(WindowedCountsTest, OutOfOrderStreamBoundsSessions) {
  // Regression: the session deque used to grow per out-of-order event (a
  // new back entry for every backwards timestamp), leaking memory on
  // shuffled streams. Sessions are now kept ordered by id with front-only
  // eviction, so the deque never exceeds the window size.
  WindowedCounts counts(Hours(1), /*window_sessions=*/4);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    counts.AddItem(1 + rng.Uniform(5), 1.0, Hours(20) + Minutes(rng.Uniform(10 * 60)));
    EXPECT_LE(counts.NumSessions(), 4u) << "event " << i;
  }
}

TEST(WindowedCountsTest, FullyExpiredLateDataFoldsOrDrops) {
  WindowedCounts counts(Hours(1), /*window_sessions=*/2);
  counts.AddItem(1, 1.0, Hours(10));  // session 10
  counts.AddItem(1, 2.0, Hours(11));  // session 11; window = {10, 11}
  // Below-window late event: folds into the oldest live session (so totals
  // stay conservative) instead of resurrecting an expired one.
  counts.AddItem(1, 8.0, Hours(3));
  EXPECT_EQ(counts.NumSessions(), 2u);
  EXPECT_DOUBLE_EQ(counts.ItemCount(1), 11.0);
  counts.AdvanceTo(Hours(12));  // session 10 (with the folded count) expires
  EXPECT_DOUBLE_EQ(counts.ItemCount(1), 2.0);
  // With no live session at all, a fully expired event is dropped.
  counts.AdvanceTo(Hours(30));
  EXPECT_EQ(counts.NumSessions(), 0u);
  counts.AddItem(1, 5.0, Hours(3));
  EXPECT_DOUBLE_EQ(counts.ItemCount(1), 0.0);
  EXPECT_EQ(counts.NumSessions(), 0u);
}

TEST(WindowedCountsTest, TrackedCounts) {
  WindowedCounts counts(Hours(1), 0);
  counts.AddItem(1, 1.0, 0);
  counts.AddItem(2, 1.0, 0);
  counts.AddItem(1, 1.0, 0);
  counts.AddPair(1, 2, 1.0, 0);
  EXPECT_EQ(counts.TrackedItems(), 2u);
  EXPECT_EQ(counts.TrackedPairs(), 1u);
}

// --- TopK threshold semantics (Algorithm 1's `t`) ----------------------------

TEST(TopKTest, EraseReopensThresholdConservatively) {
  // Regression for the prune-erase path: when an Erase shrinks a full list
  // below K, the admission threshold must collapse to 0 (under-full lists
  // admit any positive score). A stale nonzero threshold here would make
  // Hoeffding pruning drop pairs that belong in the list.
  TopK<ItemId> list(/*k=*/3);
  EXPECT_TRUE(list.Update(1, 0.9));
  EXPECT_TRUE(list.Update(2, 0.8));
  EXPECT_TRUE(list.Update(3, 0.7));
  EXPECT_DOUBLE_EQ(list.Threshold(), 0.7);  // full: K-th best
  EXPECT_FALSE(list.Update(4, 0.5));        // below threshold, rejected

  EXPECT_TRUE(list.Erase(2));
  EXPECT_FALSE(list.Erase(2));              // second erase reports absence
  EXPECT_DOUBLE_EQ(list.Threshold(), 0.0);  // reopened
  EXPECT_TRUE(list.Update(4, 0.05));        // low score now admissible
  EXPECT_DOUBLE_EQ(list.Threshold(), 0.05); // full again: threshold recovers
  EXPECT_FALSE(list.Update(5, 0.01));
}

// --- incremental == batch oracle (Eq. 8 telescopes to Eq. 5) -----------------

/// Generates a deterministic random action stream.
std::vector<UserAction> RandomActions(uint64_t seed, int num_actions,
                                      int num_users, int num_items) {
  Rng rng(seed);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kShare,
                               ActionType::kPurchase};
  std::vector<UserAction> actions;
  actions.reserve(static_cast<size_t>(num_actions));
  for (int i = 0; i < num_actions; ++i) {
    actions.push_back(
        Act(static_cast<UserId>(1 + rng.Uniform(num_users)),
            static_cast<ItemId>(1 + rng.Uniform(num_items)),
            kTypes[rng.Uniform(5)], Seconds(i)));
  }
  return actions;
}

class IncrementalOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalOracleTest, MatchesBatchRecompute) {
  // The central correctness claim of §4.1.3: the incrementally maintained
  // counts produce exactly the similarity a batch recompute over the final
  // ratings produces (no window, no pruning, unbounded linked time).
  const auto actions = RandomActions(GetParam(), 1500, 25, 40);

  PracticalItemCf::Options options;
  options.linked_time = Days(365);
  options.window_sessions = 0;
  options.enable_pruning = false;
  options.top_k = 64;
  PracticalItemCf incremental(options);

  BasicItemCf batch(BasicItemCf::SimilarityMeasure::kMinCoRating);
  for (const auto& action : actions) {
    incremental.ProcessAction(action);
    const double w = options.weights.Weight(action.action);
    const double existing = batch.RatingOf(action.user, action.item);
    if (w > existing) batch.SetRating(action.user, action.item, w);
  }
  batch.ComputeSimilarities();

  for (ItemId a = 1; a <= 40; ++a) {
    for (ItemId b = a + 1; b <= 40; ++b) {
      EXPECT_NEAR(incremental.Similarity(a, b), batch.Similarity(a, b), 1e-9)
          << "pair (" << a << ", " << b << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalOracleTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// --- basic CF (Eq. 1–2) --------------------------------------------------------

TEST(BasicItemCfTest, CosineSimilarity) {
  BasicItemCf cf(BasicItemCf::SimilarityMeasure::kCosine);
  // Two users rate both items identically: cosine = 1.
  cf.SetRating(1, 10, 2.0);
  cf.SetRating(1, 20, 2.0);
  cf.SetRating(2, 10, 3.0);
  cf.SetRating(2, 20, 3.0);
  cf.ComputeSimilarities();
  EXPECT_NEAR(cf.Similarity(10, 20), 1.0, 1e-12);
}

TEST(BasicItemCfTest, CosinePartialOverlap) {
  BasicItemCf cf(BasicItemCf::SimilarityMeasure::kCosine);
  cf.SetRating(1, 10, 1.0);
  cf.SetRating(1, 20, 1.0);
  cf.SetRating(2, 10, 1.0);  // rates only item 10
  cf.ComputeSimilarities();
  // sim = 1 / (√2 · √1) ≈ 0.707.
  EXPECT_NEAR(cf.Similarity(10, 20), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(BasicItemCfTest, RecommendExcludesRated) {
  BasicItemCf cf(BasicItemCf::SimilarityMeasure::kMinCoRating);
  // Users 1..3 like items 10 and 20 together; user 4 only 10.
  for (UserId u = 1; u <= 3; ++u) {
    cf.SetRating(u, 10, 2.0);
    cf.SetRating(u, 20, 2.0);
  }
  cf.SetRating(4, 10, 2.0);
  cf.ComputeSimilarities();
  auto recs = cf.RecommendForUser(4, 5);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 20);
  for (const auto& r : recs) EXPECT_NE(r.item, 10);
}

// --- practical CF: similar-items tables & recommendation ---------------------

PracticalItemCf::Options PlainOptions() {
  PracticalItemCf::Options options;
  options.linked_time = Days(30);
  options.window_sessions = 0;
  options.enable_pruning = false;
  return options;
}

TEST(PracticalItemCfTest, SimilarItemsTableTracksCooccurrence) {
  PracticalItemCf cf(PlainOptions());
  // Many users co-click (1, 2); one user co-clicks (1, 3).
  EventTime t = 0;
  for (UserId u = 1; u <= 5; ++u) {
    cf.ProcessAction(Act(u, 1, ActionType::kClick, t += Seconds(1)));
    cf.ProcessAction(Act(u, 2, ActionType::kClick, t += Seconds(1)));
  }
  cf.ProcessAction(Act(9, 1, ActionType::kClick, t += Seconds(1)));
  cf.ProcessAction(Act(9, 3, ActionType::kClick, t += Seconds(1)));

  const auto* similar = cf.SimilarItems(1);
  ASSERT_NE(similar, nullptr);
  ASSERT_GE(similar->size(), 2u);
  EXPECT_EQ(similar->entries()[0].id, 2);  // stronger than 3
  EXPECT_GT(cf.Similarity(1, 2), cf.Similarity(1, 3));
}

TEST(PracticalItemCfTest, RecommendFromRecentInterests) {
  PracticalItemCf cf(PlainOptions());
  EventTime t = 0;
  // Build structure: (1,2) and (3,4) are strong pairs.
  for (UserId u = 1; u <= 6; ++u) {
    cf.ProcessAction(Act(u, 1, ActionType::kClick, t += Seconds(1)));
    cf.ProcessAction(Act(u, 2, ActionType::kClick, t += Seconds(1)));
  }
  for (UserId u = 7; u <= 12; ++u) {
    cf.ProcessAction(Act(u, 3, ActionType::kClick, t += Seconds(1)));
    cf.ProcessAction(Act(u, 4, ActionType::kClick, t += Seconds(1)));
  }
  // Fresh user clicks item 1 -> expect item 2 recommended, not 3/4.
  cf.ProcessAction(Act(99, 1, ActionType::kClick, t += Seconds(1)));
  auto recs = cf.RecommendForUser(99, 3);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 2);
  for (const auto& r : recs) EXPECT_NE(r.item, 1);  // seen item excluded
}

TEST(PracticalItemCfTest, RecentKFiltersOldInterests) {
  PracticalItemCf::Options options = PlainOptions();
  options.recent_k = 1;  // only the most recent item drives predictions
  PracticalItemCf cf(options);
  EventTime t = 0;
  for (UserId u = 1; u <= 6; ++u) {
    cf.ProcessAction(Act(u, 1, ActionType::kClick, t += Seconds(1)));
    cf.ProcessAction(Act(u, 2, ActionType::kClick, t += Seconds(1)));
    cf.ProcessAction(Act(u, 3, ActionType::kClick, t += Seconds(1)));
    cf.ProcessAction(Act(u, 4, ActionType::kClick, t += Seconds(1)));
  }
  // User 99 clicked 1 long ago and 3 just now: with recent_k=1 the
  // prediction derives from item 3 only.
  cf.ProcessAction(Act(99, 1, ActionType::kClick, t += Seconds(1)));
  cf.ProcessAction(Act(99, 3, ActionType::kClick, t += Seconds(1)));
  auto recent = cf.RecentItemsOf(99);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0], 3);
}

TEST(PracticalItemCfTest, UnknownUserGetsNothing) {
  PracticalItemCf cf(PlainOptions());
  EXPECT_TRUE(cf.RecommendForUser(12345, 5).empty());
}

TEST(PracticalItemCfTest, SlidingWindowForgetsOldTrends) {
  PracticalItemCf::Options options = PlainOptions();
  options.session_length = Hours(1);
  options.window_sessions = 2;
  options.linked_time = Hours(1);
  PracticalItemCf cf(options);
  // Strong (1,2) signal in hour 0.
  for (UserId u = 1; u <= 5; ++u) {
    cf.ProcessAction(Act(u, 1, ActionType::kClick, Minutes(2 * u)));
    cf.ProcessAction(Act(u, 2, ActionType::kClick, Minutes(2 * u + 1)));
  }
  EXPECT_GT(cf.Similarity(1, 2), 0.0);
  // Hours later, a single action advances the window; the old counts are
  // outside it.
  cf.ProcessAction(Act(50, 7, ActionType::kClick, Hours(10)));
  EXPECT_DOUBLE_EQ(cf.Similarity(1, 2), 0.0);
}

// --- Hoeffding pruning (Eq. 9, Algorithm 1) -----------------------------------

TEST(PracticalItemCfTest, PrunesPersistentlyDissimilarPairs) {
  PracticalItemCf::Options options = PlainOptions();
  options.enable_pruning = true;
  options.hoeffding_delta = 0.1;
  options.top_k = 2;  // small lists so thresholds rise fast
  PracticalItemCf cf(options);

  EventTime t = 0;
  // Items 1,2,3 are mutually strongly similar (fill 1's top-2 list) and so
  // are 99,98,97 (fill 99's list) — pruning is bidirectional and needs both
  // thresholds up (Algorithm 1 line 12). The cross pair (1, 99) co-occurs
  // only weakly and keeps getting observed.
  for (int round = 0; round < 60; ++round) {
    UserId u = 1000 + round;
    cf.ProcessAction(Act(u, 1, ActionType::kPurchase, t += Seconds(1)));
    cf.ProcessAction(Act(u, 2, ActionType::kPurchase, t += Seconds(1)));
    cf.ProcessAction(Act(u, 3, ActionType::kPurchase, t += Seconds(1)));
    UserId v = 5000 + round;
    cf.ProcessAction(Act(v, 99, ActionType::kPurchase, t += Seconds(1)));
    cf.ProcessAction(Act(v, 98, ActionType::kPurchase, t += Seconds(1)));
    cf.ProcessAction(Act(v, 97, ActionType::kPurchase, t += Seconds(1)));
    // The weak cross pair, observed every few rounds.
    if (round % 3 == 0) {
      UserId z = 9000 + round;
      cf.ProcessAction(Act(z, 99, ActionType::kBrowse, t += Seconds(1)));
      cf.ProcessAction(Act(z, 1, ActionType::kBrowse, t += Seconds(1)));
    }
  }

  EXPECT_GT(cf.stats().pairs_pruned, 0);
  EXPECT_TRUE(cf.IsPruned(1, 99));
  EXPECT_GT(cf.stats().pair_updates_pruned, 0);  // later updates skipped
  // The pruned pair never sits in the similar-items list.
  const auto* similar = cf.SimilarItems(1);
  ASSERT_NE(similar, nullptr);
  EXPECT_FALSE(similar->Contains(99));
  // The strong pairs survive.
  EXPECT_FALSE(cf.IsPruned(1, 2));
  EXPECT_FALSE(cf.IsPruned(1, 3));
}

TEST(PracticalItemCfTest, NoPruningBeforeListsFill) {
  PracticalItemCf::Options options = PlainOptions();
  options.enable_pruning = true;
  options.top_k = 50;  // lists never fill in this test
  PracticalItemCf cf(options);
  EventTime t = 0;
  for (UserId u = 1; u <= 10; ++u) {
    cf.ProcessAction(Act(u, 1, ActionType::kClick, t += Seconds(1)));
    cf.ProcessAction(Act(u, 2, ActionType::kClick, t += Seconds(1)));
  }
  EXPECT_EQ(cf.stats().pairs_pruned, 0);
}

TEST(PracticalItemCfTest, PruningSavesPairUpdates) {
  // Same stream with and without pruning: pruning must strictly reduce the
  // number of pair-counter updates and leave top similarities intact.
  const auto actions = RandomActions(77, 4000, 30, 25);

  PracticalItemCf::Options base = PlainOptions();
  base.top_k = 3;
  PracticalItemCf unpruned(base);
  base.enable_pruning = true;
  base.hoeffding_delta = 0.2;
  PracticalItemCf pruned(base);

  for (const auto& action : actions) {
    unpruned.ProcessAction(action);
    pruned.ProcessAction(action);
  }
  EXPECT_GT(pruned.stats().pair_updates_pruned, 0);
  EXPECT_LT(pruned.stats().pair_updates, unpruned.stats().pair_updates);
}

TEST(PracticalItemCfTest, StatsCountActions) {
  PracticalItemCf cf(PlainOptions());
  cf.ProcessAction(Act(1, 1, ActionType::kClick, 0));
  cf.ProcessAction(Act(1, 2, ActionType::kClick, Seconds(1)));
  EXPECT_EQ(cf.stats().actions, 2);
  EXPECT_EQ(cf.stats().pair_updates, 1);
}

TEST(PracticalItemCfTest, HistoryTtlBoundsState) {
  PracticalItemCf::Options options = PlainOptions();
  options.history_ttl = Hours(1);
  PracticalItemCf cf(options);
  cf.ProcessAction(Act(1, 1, ActionType::kClick, Hours(0)));
  cf.ProcessAction(Act(1, 2, ActionType::kClick, Hours(5)));
  // Item 1 evicted: only item 2 is recent.
  auto recent = cf.RecentItemsOf(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0], 2);
}

}  // namespace
}  // namespace tencentrec::core
