// The ops plane end to end: health registry, embedded admin HTTP server
// (exercised over real loopback sockets), the stall watchdog, and the
// engine-level acceptance paths — sampled traces reaching /traces, and a
// synthetic stalled component flipping /healthz to degraded.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "engine/monitor.h"
#include "engine/tencentrec.h"
#include "obs/admin_server.h"
#include "obs/freshness.h"
#include "obs/health.h"

namespace tencentrec {
namespace {

using engine::StallWatchdog;
using obs::AdminServer;
using obs::HealthRegistry;

/// One blocking HTTP GET against 127.0.0.1:port; returns the full raw
/// response ("" on connect failure).
std::string HttpGet(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
  ssize_t ignored = ::write(fd, req.data(), req.size());
  (void)ignored;
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) out.append(buf, n);
  ::close(fd);
  return out;
}

/// Sends raw bytes and returns the response (malformed-request tests).
std::string HttpRaw(int port, const std::string& raw) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  ssize_t ignored = ::write(fd, raw.data(), raw.size());
  (void)ignored;
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) out.append(buf, n);
  ::close(fd);
  return out;
}

// --- HealthRegistry ---------------------------------------------------------

TEST(HealthRegistryTest, EmptyRegistryIsHealthyButNotReady) {
  HealthRegistry health;
  EXPECT_TRUE(health.Healthy());
  EXPECT_FALSE(health.Ready());
  health.SetReady(true);
  EXPECT_TRUE(health.Ready());
}

TEST(HealthRegistryTest, UnhealthyComponentDegradesAndRecovers) {
  HealthRegistry health;
  health.Set("bolt-a", true);
  health.Set("bolt-b", false, "no progress, backlog 7");
  EXPECT_FALSE(health.Healthy());
  const auto entries = health.Entries();
  ASSERT_EQ(entries.size(), 2u);

  const std::string json = health.Json();
  EXPECT_NE(json.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("bolt-b"), std::string::npos);
  EXPECT_NE(json.find("no progress, backlog 7"), std::string::npos);

  health.Set("bolt-b", true);
  EXPECT_TRUE(health.Healthy());
  EXPECT_NE(health.Json().find("\"status\":\"ok\""), std::string::npos);

  health.Clear("bolt-b");
  EXPECT_EQ(health.Entries().size(), 1u);
}

TEST(HealthRegistryTest, JsonEscapesReasons) {
  HealthRegistry health;
  health.Set("c", false, "quote \" backslash \\ newline \n");
  const std::string json = health.Json();
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

// --- AdminServer ------------------------------------------------------------

TEST(AdminServerTest, ServesRoutesOnEphemeralPort) {
  AdminServer server(AdminServer::Options{});
  server.Route("/ping", [](const AdminServer::Request&) {
    AdminServer::Response resp;
    resp.body = "pong";
    return resp;
  });
  server.Route("/echo", [](const AdminServer::Request& req) {
    AdminServer::Response resp;
    resp.body = req.method + " " + req.path + " q=" + req.query;
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  const std::string ping = HttpGet(server.port(), "/ping");
  EXPECT_NE(ping.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(ping.find("pong"), std::string::npos);
  EXPECT_NE(ping.find("Content-Length: 4"), std::string::npos);
  EXPECT_NE(ping.find("Connection: close"), std::string::npos);

  const std::string echo = HttpGet(server.port(), "/echo?format=chrome");
  EXPECT_NE(echo.find("GET /echo q=format=chrome"), std::string::npos);

  EXPECT_NE(HttpGet(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(HttpRaw(server.port(), "garbage\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);

  EXPECT_GE(server.requests_served(), 4u);
  server.Stop();
  server.Stop();  // idempotent
}

TEST(AdminServerTest, StatusCodesPassThrough) {
  AdminServer server(AdminServer::Options{});
  server.Route("/unhealthy", [](const AdminServer::Request&) {
    AdminServer::Response resp;
    resp.status = 503;
    resp.body = "degraded";
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(HttpGet(server.port(), "/unhealthy").find("HTTP/1.1 503"),
            std::string::npos);
  server.Stop();
}

// --- StallWatchdog ----------------------------------------------------------

TEST(StallWatchdogTest, DetectsStallAndRecovery) {
  HealthRegistry health;
  StallWatchdog::Options opts;
  opts.health = &health;
  StallWatchdog dog(opts);

  std::atomic<uint64_t> progress{0};
  std::atomic<uint64_t> backlog{0};
  dog.Register({"stage",
                [&] { return progress.load(); },
                [&] { return backlog.load(); }});

  dog.CheckNow();  // seeds the baseline
  EXPECT_TRUE(dog.StalledComponents().empty());

  // Progress flowing: healthy regardless of backlog.
  progress = 5;
  backlog = 3;
  dog.CheckNow();
  EXPECT_TRUE(dog.StalledComponents().empty());
  EXPECT_TRUE(health.Healthy());

  // No progress + backlog = stalled; /healthz input flips.
  dog.CheckNow();
  ASSERT_EQ(dog.StalledComponents(), std::vector<std::string>{"stage"});
  EXPECT_FALSE(health.Healthy());

  // Backlog draining without progress is NOT recovery.
  backlog = 0;
  dog.CheckNow();
  EXPECT_FALSE(health.Healthy());

  // Forward motion clears the flag.
  progress = 6;
  dog.CheckNow();
  EXPECT_TRUE(dog.StalledComponents().empty());
  EXPECT_TRUE(health.Healthy());
}

TEST(StallWatchdogTest, IdleWithoutBacklogNeverStalls) {
  StallWatchdog dog(StallWatchdog::Options{});
  std::atomic<uint64_t> progress{10};
  dog.Register({"idle",
                [&] { return progress.load(); },
                [] { return uint64_t{0}; }});
  for (int i = 0; i < 5; ++i) dog.CheckNow();
  EXPECT_TRUE(dog.StalledComponents().empty());
}

TEST(StallWatchdogTest, BackgroundThreadFlagsWithinOnePeriod) {
  HealthRegistry health;
  StallWatchdog::Options opts;
  opts.period_ms = 20;
  opts.health = &health;
  StallWatchdog dog(opts);
  std::atomic<uint64_t> backlog{4};
  dog.Register({"wedged",
                [] { return uint64_t{7}; },  // never advances
                [&] { return backlog.load(); }});
  dog.Start();
  // Seed sweep + detect sweep: two periods, generously bounded.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (health.Healthy() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(health.Healthy());
  EXPECT_GE(dog.sweeps(), 2u);
  dog.Stop();
}

TEST(StallWatchdogTest, UnregisterClearsHealthEntry) {
  HealthRegistry health;
  StallWatchdog::Options opts;
  opts.health = &health;
  StallWatchdog dog(opts);
  std::atomic<uint64_t> backlog{1};
  const int64_t id = dog.Register({"gone",
                                   [] { return uint64_t{1}; },
                                   [&] { return backlog.load(); }});
  dog.CheckNow();
  dog.CheckNow();
  EXPECT_FALSE(health.Healthy());
  dog.Unregister(id);
  EXPECT_TRUE(health.Healthy());
  EXPECT_TRUE(dog.StalledComponents().empty());
}

// --- engine acceptance ------------------------------------------------------

engine::TencentRec::Options OpsEngineOptions() {
  engine::TencentRec::Options options;
  options.app.app = "obstest";
  options.app.parallelism = 2;
  options.store.num_data_servers = 2;
  options.store.num_instances = 4;
  return options;
}

std::vector<core::UserAction> MakeActions(int n) {
  std::vector<core::UserAction> actions;
  actions.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    core::UserAction a;
    a.user = 1 + (i % 16);
    a.item = 1 + (i % 40);
    a.action = (i % 3 == 0) ? core::ActionType::kPurchase
                            : core::ActionType::kClick;
    a.timestamp = Seconds(i);
    actions.push_back(a);
  }
  return actions;
}

/// Acceptance: with sampling 1/64 on a seeded engine run, /traces returns
/// at least one complete multi-span trace reaching from the spout to a
/// store write, and ?format=chrome yields a trace_event JSON array.
TEST(EngineOpsTest, SampledTracesReachTheAdminPlane) {
  SetMetricsEnabled(true);
  Tracer::Default().Clear();
  auto options = OpsEngineOptions();
  options.trace_sample_every = 64;
  options.enable_admin_server = true;
  auto engine = engine::TencentRec::Create(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_NE((*engine)->admin_server(), nullptr);
  const int port = (*engine)->admin_server()->port();
  ASSERT_GT(port, 0);

  ASSERT_TRUE((*engine)->ProcessBatch(MakeActions(512)).ok());

  // The spout stamped 1-in-64 of 512 actions; every hop recorded spans.
  EXPECT_GT(Tracer::Default().total_recorded(), 0u);

  const std::string traces = HttpGet(port, "/traces");
  EXPECT_NE(traces.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(traces.find("\"spout\""), std::string::npos)
      << traces.substr(0, 2000);
  EXPECT_NE(traces.find("\"tdstore.write\""), std::string::npos);
  // Multi-span traces exist: some trace groups at least two spans, which
  // the grouped export renders as adjacent span objects.
  EXPECT_NE(traces.find("},{\"name\""), std::string::npos);

  const std::string chrome = HttpGet(port, "/traces?format=chrome");
  const size_t body_at = chrome.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = chrome.substr(body_at + 4);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '[');
  EXPECT_EQ(body.back(), ']');
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(body.find("\"ts\":"), std::string::npos);
  EXPECT_NE(body.find("\"dur\":"), std::string::npos);

  // The rest of the plane answers too.
  EXPECT_NE(HttpGet(port, "/metrics").find("HTTP/1.1 200"),
            std::string::npos);
  EXPECT_NE(HttpGet(port, "/vars").find("\"app\""), std::string::npos);
  EXPECT_NE(HttpGet(port, "/healthz").find("\"status\":\"ok\""),
            std::string::npos);
  EXPECT_NE(HttpGet(port, "/readyz").find("\"ready\":true"),
            std::string::npos);

  SetTraceSampleEvery(0);
  Tracer::Default().Clear();
}

/// Acceptance: a synthetic stalled component drives /healthz to degraded
/// within one watchdog period.
TEST(EngineOpsTest, StalledComponentDegradesHealthz) {
  auto options = OpsEngineOptions();
  options.enable_admin_server = true;
  options.enable_watchdog = true;
  options.watchdog_period_ms = 20;
  auto engine = engine::TencentRec::Create(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_NE((*engine)->watchdog(), nullptr);
  const int port = (*engine)->admin_server()->port();

  EXPECT_NE(HttpGet(port, "/healthz").find("HTTP/1.1 200"),
            std::string::npos);

  // A bolt that never drains its visibly non-empty queue.
  (*engine)->watchdog()->Register({"synthetic-wedge",
                                   [] { return uint64_t{3}; },
                                   [] { return uint64_t{9}; }});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((*engine)->health().Healthy() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::string resp = HttpGet(port, "/healthz");
  EXPECT_NE(resp.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(resp.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(resp.find("synthetic-wedge"), std::string::npos);
}

// --- graceful shutdown ------------------------------------------------------

TEST(AdminServerTest, StopIsPromptWithoutTraffic) {
  AdminServer server(AdminServer::Options{});
  server.Route("/ping", [](const AdminServer::Request&) {
    AdminServer::Response resp;
    resp.body = "pong";
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();
  EXPECT_NE(HttpGet(port, "/ping").find("pong"), std::string::npos);
  // No in-flight request: the self-pipe must unblock the accept loop well
  // inside the drain deadline (this used to require a dummy connect).
  const auto t0 = std::chrono::steady_clock::now();
  server.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
  // Stopped: new connections are refused.
  EXPECT_EQ(HttpGet(port, "/ping"), "");
}

TEST(AdminServerTest, RequestStopFromAnotherThreadUnblocksServe) {
  AdminServer server(AdminServer::Options{});
  ASSERT_TRUE(server.Start().ok());
  // The async-signal-safe half on its own (as a SIGTERM handler would call
  // it), then the joining half.
  std::thread signaler([&server] { server.RequestStop(); });
  signaler.join();
  server.Stop();
  EXPECT_EQ(HttpGet(server.port(), "/"), "");
}

// --- watchdog instruments ---------------------------------------------------

/// The watchdog's recovery path, observed through its registry instruments:
/// `watchdog.stalls` counts detection edges (not sweeps), and
/// `watchdog.stalled_components` tracks the current stall count.
TEST(StallWatchdogTest, RecoveryPathDrivesStallCounterAndGauge) {
  SetMetricsEnabled(true);
  auto counter_value = [] {
    for (const auto& [name, v] : MetricRegistry::Default().Counters()) {
      if (name == "watchdog.stalls") return v;
    }
    return uint64_t{0};
  };
  auto gauge_value = [] {
    for (const auto& [name, v] : MetricRegistry::Default().Gauges()) {
      if (name == "watchdog.stalled_components") return v;
    }
    return int64_t{0};
  };
  const uint64_t base = counter_value();

  HealthRegistry health;
  StallWatchdog::Options opts;
  opts.health = &health;
  StallWatchdog dog(opts);
  std::atomic<uint64_t> progress{1};
  std::atomic<uint64_t> backlog{2};
  dog.Register({"edge",
                [&] { return progress.load(); },
                [&] { return backlog.load(); }});
  dog.CheckNow();  // seed
  dog.CheckNow();  // detect: one edge
  EXPECT_EQ(counter_value(), base + 1);
  EXPECT_EQ(gauge_value(), 1);
  dog.CheckNow();  // still stalled: no new edge
  EXPECT_EQ(counter_value(), base + 1);

  progress = 2;  // recovery
  dog.CheckNow();
  EXPECT_TRUE(health.Healthy());
  EXPECT_EQ(gauge_value(), 0);
  EXPECT_EQ(counter_value(), base + 1);

  dog.CheckNow();  // re-stall: a second edge
  EXPECT_EQ(counter_value(), base + 2);
  EXPECT_EQ(gauge_value(), 1);
}

// --- freshness / timeseries / SLO acceptance --------------------------------

/// Acceptance: a seeded run leaves per-stage watermarks behind; the derived
/// end-to-end lag matches the hand-recomputed min-over-stages value, the
/// freshness gauges ride /vars, and /timeseries serves the sampled series.
TEST(EngineOpsTest, FreshnessGaugesAndTimeseriesServed) {
  SetMetricsEnabled(true);
  MetricRegistry::Default().Reset();
  obs::FreshnessTracker::Default().Clear();
  auto options = OpsEngineOptions();
  options.enable_admin_server = true;
  options.enable_timeseries = true;
  options.timeseries_sample_period_ms = 3600 * 1000;  // manual sampling only
  auto engine = engine::TencentRec::Create(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const int port = (*engine)->admin_server()->port();
  ASSERT_NE((*engine)->timeseries(), nullptr);

  ASSERT_TRUE((*engine)->ProcessBatch(MakeActions(256)).ok());

  // Every topology stage retired with data: per-stage watermarks are
  // nonzero, and e2e lag recomputes as now - min(stage watermark).
  const uint64_t now = MonoMicros();
  const auto lags = obs::FreshnessTracker::Default().Lags(now);
  ASSERT_GE(lags.size(), 3u);
  uint64_t min_watermark = UINT64_MAX;
  bool saw_spout = false;
  for (const auto& lag : lags) {
    EXPECT_GT(lag.watermark_micros, 0u) << lag.stage;
    min_watermark = std::min(min_watermark, lag.watermark_micros);
    saw_spout |= lag.stage == "spout";
  }
  EXPECT_TRUE(saw_spout);
  EXPECT_EQ(obs::FreshnessTracker::Default().EndToEndLag(now),
            now - min_watermark);

  // /vars carries the freshness gauges.
  const std::string vars = HttpGet(port, "/vars");
  EXPECT_NE(vars.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(vars.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(vars.find("freshness.e2e.lag_us"), std::string::npos);
  EXPECT_NE(vars.find("freshness.spout.lag_us"), std::string::npos);

  // One manual sample; the ring then serves both the listing and queries.
  (*engine)->timeseries()->SampleNow();
  const std::string listing = HttpGet(port, "/timeseries");
  EXPECT_NE(listing.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(listing.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(listing.find("freshness.e2e.lag_us"), std::string::npos);
  const std::string series =
      HttpGet(port, "/timeseries?metric=freshness.e2e.lag_us&window=600");
  EXPECT_NE(series.find("\"series\":\"freshness.e2e.lag_us\""),
            std::string::npos);
  EXPECT_NE(series.find("{\"t\":"), std::string::npos);  // >= 1 point
}

/// Acceptance: an induced stall flips the stall-free SLO to breached within
/// one evaluation (sample -> burn-rate eval -> health), and /readyz
/// reflects the breach.
TEST(EngineOpsTest, InducedStallBreachesSloAndDropsReadyz) {
  SetMetricsEnabled(true);
  MetricRegistry::Default().Reset();
  obs::FreshnessTracker::Default().Clear();
  auto options = OpsEngineOptions();
  options.enable_admin_server = true;
  options.enable_watchdog = true;
  options.enable_slo = true;
  options.timeseries_sample_period_ms = 3600 * 1000;  // manual sampling only
  // Only the stall objective is under test here.
  options.slo_freshness_lag_micros = 3600ull * 1000 * 1000;
  auto engine = engine::TencentRec::Create(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const int port = (*engine)->admin_server()->port();
  ASSERT_NE((*engine)->slo(), nullptr);

  // Healthy baseline: sample + eval (the post-sample hook) leaves every
  // objective unbreached and the engine ready.
  (*engine)->timeseries()->SampleNow();
  EXPECT_NE(HttpGet(port, "/readyz").find("HTTP/1.1 200"),
            std::string::npos);
  const std::string before = HttpGet(port, "/slo");
  EXPECT_NE(before.find("\"name\":\"stall-free\""), std::string::npos);
  EXPECT_EQ(before.find("\"breached\":true"), std::string::npos);

  // Wedge a synthetic component, let the watchdog see it, and take ONE
  // sample: the post-sample evaluation must breach immediately.
  (*engine)->watchdog()->Register({"synthetic-wedge",
                                   [] { return uint64_t{3}; },
                                   [] { return uint64_t{9}; }});
  (*engine)->watchdog()->CheckNow();  // seed
  (*engine)->watchdog()->CheckNow();  // detect -> stalled gauge = 1
  (*engine)->timeseries()->SampleNow();

  const std::string after = HttpGet(port, "/slo");
  EXPECT_NE(after.find("\"breached\":true"), std::string::npos);
  const std::string ready = HttpGet(port, "/readyz");
  EXPECT_NE(ready.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(ready.find("\"ready\":false"), std::string::npos);
  // /healthz names the breached objective.
  EXPECT_NE(HttpGet(port, "/healthz").find("slo.stall-free"),
            std::string::npos);
}

/// Acceptance: at least one /metrics histogram bucket carries an exemplar
/// trace id that resolves to a span group on /traces.
TEST(EngineOpsTest, ExemplarTraceIdsResolveAgainstTraces) {
  SetMetricsEnabled(true);
  MetricRegistry::Default().Reset();
  Tracer::Default().Clear();
  obs::FreshnessTracker::Default().Clear();
  auto options = OpsEngineOptions();
  options.enable_admin_server = true;
  options.trace_sample_every = 16;
  auto engine = engine::TencentRec::Create(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const int port = (*engine)->admin_server()->port();

  ASSERT_TRUE((*engine)->ProcessBatch(MakeActions(512)).ok());

  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find("application/openmetrics-text"), std::string::npos);
  EXPECT_NE(metrics.find("# EOF"), std::string::npos);
  const size_t at = metrics.find("# {trace_id=\"");
  ASSERT_NE(at, std::string::npos) << metrics.substr(0, 1500);
  const std::string trace_id = metrics.substr(at + 13, 16);
  ASSERT_EQ(trace_id.size(), 16u);

  // The id resolves on the trace plane (ids render identically: 16 hex).
  const std::string traces = HttpGet(port, "/traces");
  EXPECT_NE(traces.find(trace_id), std::string::npos) << trace_id;

  SetTraceSampleEvery(0);
  Tracer::Default().Clear();
}

/// The watchdog also covers the ParallelItemCf mirror stages.
TEST(EngineOpsTest, WatchdogCoversMirrorStages) {
  auto options = OpsEngineOptions();
  options.mirror_parallel_cf = true;
  options.enable_watchdog = true;
  auto engine = engine::TencentRec::Create(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->ProcessBatch(MakeActions(64)).ok());
  // Stages drained after ProcessBatch: progress advanced, no backlog, so
  // sweeps must keep them healthy.
  (*engine)->watchdog()->CheckNow();
  (*engine)->watchdog()->CheckNow();
  EXPECT_TRUE((*engine)->health().Healthy());
  EXPECT_TRUE((*engine)->watchdog()->StalledComponents().empty());
}

}  // namespace
}  // namespace tencentrec
