#include <gtest/gtest.h>

#include "sim/apps.h"
#include "sim/click_model.h"
#include "sim/world.h"

namespace tencentrec::sim {
namespace {

WorldOptions SmallWorld() {
  WorldOptions options;
  options.num_users = 100;
  options.num_items = 200;
  options.num_genres = 8;
  options.seed = 7;
  return options;
}

// --- world ---------------------------------------------------------------------

TEST(WorldTest, DeterministicConstruction) {
  World a(SmallWorld());
  World b(SmallWorld());
  ASSERT_EQ(a.users().size(), b.users().size());
  for (size_t i = 0; i < a.users().size(); ++i) {
    EXPECT_EQ(a.users()[i].preferences, b.users()[i].preferences);
    EXPECT_EQ(a.users()[i].demographics, b.users()[i].demographics);
  }
  ASSERT_EQ(a.items().size(), b.items().size());
  for (size_t i = 0; i < a.items().size(); ++i) {
    EXPECT_EQ(a.items()[i].genre, b.items()[i].genre);
    EXPECT_DOUBLE_EQ(a.items()[i].quality, b.items()[i].quality);
  }
}

TEST(WorldTest, PreferencesNormalized) {
  World world(SmallWorld());
  for (const auto& user : world.users()) {
    double sum = 0.0;
    for (double w : user.preferences) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(WorldTest, SomeUsersHaveUnknownDemographics) {
  World world(SmallWorld());
  int unknown = 0;
  for (const auto& user : world.users()) {
    if (core::DemographicGroup(user.demographics) == 0) ++unknown;
  }
  EXPECT_GT(unknown, 0);                                  // the §6.4 case
  EXPECT_LT(unknown, static_cast<int>(world.users().size()) / 2);
}

TEST(WorldTest, AffinityPrefersPreferredGenre) {
  World world(SmallWorld());
  const SimUser& user = world.users()[0];
  int best_genre = 0;
  for (size_t g = 1; g < user.preferences.size(); ++g) {
    if (user.preferences[g] > user.preferences[static_cast<size_t>(best_genre)]) {
      best_genre = static_cast<int>(g);
    }
  }
  // Find items of best and of some other genre with similar quality.
  double best_affinity = 0.0, other_affinity = 0.0;
  for (const auto& item : world.items()) {
    if (item.genre == best_genre) {
      best_affinity = std::max(best_affinity, world.Affinity(user, item, 0));
    } else {
      other_affinity = std::max(other_affinity, world.Affinity(user, item, 0));
    }
  }
  EXPECT_GT(best_affinity, 0.0);
}

TEST(WorldTest, ChurnPublishesAndExpires) {
  WorldOptions options = SmallWorld();
  options.daily_new_item_frac = 0.1;
  options.item_lifetime = Days(1);
  World world(options);
  const size_t initial = world.items().size();

  auto fresh = world.AdvanceDay(Days(1));
  EXPECT_FALSE(fresh.empty());
  EXPECT_GT(world.items().size(), initial);

  // After three more days the initial items (published at t=0) expired.
  world.AdvanceDay(Days(2));
  world.AdvanceDay(Days(3));
  size_t live_initial = 0;
  for (size_t i = 0; i < initial; ++i) {
    if (!world.items()[i].expired) ++live_initial;
  }
  EXPECT_EQ(live_initial, 0u);
  // Live pool only contains unexpired items.
  for (core::ItemId id : world.LiveItems()) {
    EXPECT_FALSE(world.item(id)->expired);
  }
}

TEST(WorldTest, DriftChangesPreferences) {
  World world(SmallWorld());
  auto before = world.users()[0].preferences;
  world.AdvanceDay(Days(1));
  EXPECT_NE(before, world.users()[0].preferences);
}

TEST(WorldTest, BrowseSamplesFocusGenre) {
  World world(SmallWorld());
  Rng rng(3);
  SimUser user = world.users()[0];  // copy; we only need a focused user
  user.focus_genre = 2;
  int focus_hits = 0;
  for (int i = 0; i < 200; ++i) {
    const SimItem* item = world.SampleBrowseItem(user, 1.0, 0, rng);
    ASSERT_NE(item, nullptr);
    if (item->genre == 2) ++focus_hits;
  }
  EXPECT_EQ(focus_hits, 200);  // focus_ratio 1.0 -> always focus genre
}

// --- click model -----------------------------------------------------------------

TEST(ClickModelTest, FocusAndPositionEffects) {
  World world(SmallWorld());
  ClickModelOptions options;
  ClickModel model(options);
  const SimUser& user = world.users()[0];

  const SimItem* focus_item = nullptr;
  const SimItem* other_item = nullptr;
  for (const auto& item : world.items()) {
    if (item.genre == user.focus_genre && focus_item == nullptr) {
      focus_item = &item;
    } else if (item.genre != user.focus_genre && other_item == nullptr) {
      other_item = &item;
    }
  }
  ASSERT_NE(focus_item, nullptr);
  ASSERT_NE(other_item, nullptr);

  const double p_focus =
      model.ClickProbability(world, user, *focus_item, 0, 0, false);
  // Focus match multiplies the probability.
  SimUser shifted = user;
  shifted.focus_genre = other_item->genre;
  const double p_unfocused =
      model.ClickProbability(world, shifted, *focus_item, 0, 0, false);
  EXPECT_GT(p_focus, p_unfocused);

  // Deeper positions are clicked less; repeats are penalized.
  EXPECT_GT(model.ClickProbability(world, user, *focus_item, 0, 0, false),
            model.ClickProbability(world, user, *focus_item, 5, 0, false));
  EXPECT_GT(model.ClickProbability(world, user, *focus_item, 0, 0, false),
            model.ClickProbability(world, user, *focus_item, 0, 0, true));
}

TEST(ClickModelTest, ProbabilitiesBounded) {
  World world(SmallWorld());
  ClickModelOptions options;
  options.base_ctr = 0.5;
  options.focus_boost = 10.0;
  ClickModel model(options);
  for (const auto& item : world.items()) {
    const double p = model.ClickProbability(world, world.users()[0], item, 0,
                                            0, false);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, options.max_ctr);
  }
}

// --- A/B harness ------------------------------------------------------------------

TEST(AbTestTest, DeterministicGivenSeed) {
  auto s1 = MakeVideosScenario(1, 99);
  auto s2 = MakeVideosScenario(1, 99);
  // Shrink for speed.
  s1.options.sessions_per_day = 150;
  s1.options.warmup_days = 1;
  s2.options.sessions_per_day = 150;
  s2.options.warmup_days = 1;
  auto r1 = s1.Run();
  auto r2 = s2.Run();
  ASSERT_EQ(r1.days.size(), r2.days.size());
  for (size_t i = 0; i < r1.days.size(); ++i) {
    EXPECT_EQ(r1.days[i].original.shown, r2.days[i].original.shown);
    EXPECT_EQ(r1.days[i].original.clicks, r2.days[i].original.clicks);
    EXPECT_EQ(r1.days[i].tencentrec.clicks, r2.days[i].tencentrec.clicks);
  }
}

TEST(AbTestTest, BothArmsServeAndGetClicks) {
  auto s = MakeNewsScenario(2, 5);
  s.options.sessions_per_day = 300;
  s.options.warmup_days = 1;
  auto result = s.Run();
  ASSERT_EQ(result.days.size(), 2u);
  for (const auto& day : result.days) {
    EXPECT_GT(day.original.shown, 0);
    EXPECT_GT(day.tencentrec.shown, 0);
    EXPECT_GT(day.original.clicks, 0);
    EXPECT_GT(day.tencentrec.clicks, 0);
    // CTRs in a plausible range.
    EXPECT_LT(day.original.Ctr(), 0.6);
    EXPECT_LT(day.tencentrec.Ctr(), 0.6);
    // News scenario tracks reads.
    EXPECT_GT(day.tencentrec.reads, 0);
  }
}

TEST(AbTestTest, TencentRecWinsTheNewsScenario) {
  // The headline result (Fig. 10): real-time CB beats the hourly-refreshed
  // model under item churn. Deterministic seed; asserted on the average.
  auto s = MakeNewsScenario(3, 42);
  s.options.sessions_per_day = 600;
  auto result = s.Run();
  EXPECT_GT(result.improvement.mean(), 0.0);
}

TEST(AbTestTest, TencentRecWinsTheVideosScenario) {
  auto s = MakeVideosScenario(3, 42);
  s.options.sessions_per_day = 600;
  auto result = s.Run();
  EXPECT_GT(result.improvement.mean(), 0.0);
}

TEST(AbTestTest, ScenariosExposeExpectedModes) {
  EXPECT_EQ(MakeNewsScenario(1, 1).options.mode, ServingMode::kHomeFeed);
  EXPECT_EQ(MakeVideosScenario(1, 1).options.mode, ServingMode::kHomeFeed);
  auto price = MakeYixunScenario(YixunPosition::kSimilarPrice, 1, 1);
  EXPECT_EQ(price.options.mode, ServingMode::kContext);
  EXPECT_TRUE(static_cast<bool>(price.options.position_filter));
  auto purchase = MakeYixunScenario(YixunPosition::kSimilarPurchase, 1, 1);
  EXPECT_FALSE(static_cast<bool>(purchase.options.position_filter));
  auto ads = MakeAdsScenario(1, 1);
  EXPECT_EQ(ads.options.mode, ServingMode::kAdRanking);
  EXPECT_TRUE(ads.options.emit_impressions);
}

TEST(AbTestTest, PositionFilterRestrictsPriceBand) {
  auto s = MakeYixunScenario(YixunPosition::kSimilarPrice, 1, 1);
  const auto& items = s.world->items();
  ASSERT_GE(items.size(), 2u);
  const SimItem& a = items[0];
  for (const auto& b : items) {
    if (s.options.position_filter(a, b)) {
      EXPECT_EQ(a.price_band, b.price_band);
    }
  }
}

}  // namespace
}  // namespace tencentrec::sim
