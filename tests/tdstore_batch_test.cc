#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "tdstore/batch_writer.h"
#include "tdstore/client.h"
#include "tdstore/cluster.h"
#include "tdstore/codec.h"

namespace tencentrec::tdstore {
namespace {

Cluster::Options SmallCluster() {
  Cluster::Options options;
  options.num_data_servers = 3;
  options.num_instances = 8;
  return options;
}

// --- data server batch entry points -----------------------------------------

TEST(DataServerBatchTest, RunsApplyInOrderAndCountOneInvocation) {
  DataServer ds(0, /*sync_replication=*/true);
  ASSERT_TRUE(ds.CreateInstance(1, EngineOptions()).ok());
  ASSERT_TRUE(ds.CreateInstance(2, EngineOptions()).ok());
  ASSERT_TRUE(ds.SetHostRole(1, true).ok());
  ASSERT_TRUE(ds.SetHostRole(2, true).ok());

  // Same-key items in one batch must see each other in input order.
  std::vector<BatchIncrDouble> items = {
      {1, "a", 1.5}, {1, "a", 2.0}, {1, "b", 1.0}, {2, "c", 4.0}};
  std::vector<Result<double>> out;
  ASSERT_TRUE(ds.MultiIncrDouble(items, &out).ok());
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0].value(), 1.5);
  EXPECT_DOUBLE_EQ(out[1].value(), 3.5);
  EXPECT_DOUBLE_EQ(out[2].value(), 1.0);
  EXPECT_DOUBLE_EQ(out[3].value(), 4.0);
  // One entry call, one invocation — but per-op write accounting stays.
  EXPECT_EQ(ds.invocations(), 1);
  EXPECT_EQ(ds.writes(), 4);

  std::vector<BatchGet> gets = {{1, "a"}, {1, "missing"}, {2, "c"}};
  std::vector<Result<std::string>> gout;
  ASSERT_TRUE(ds.MultiGet(gets, &gout).ok());
  EXPECT_EQ(ds.invocations(), 2);
  EXPECT_EQ(gout[0].value(), EncodeDouble(3.5));
  EXPECT_TRUE(gout[1].status().IsNotFound());
  EXPECT_EQ(gout[2].value(), EncodeDouble(4.0));
}

TEST(DataServerBatchTest, PerItemErrorsDoNotAbortSiblings) {
  DataServer ds(0, true);
  ASSERT_TRUE(ds.CreateInstance(1, EngineOptions()).ok());
  ASSERT_TRUE(ds.CreateInstance(2, EngineOptions()).ok());
  ASSERT_TRUE(ds.SetHostRole(1, true).ok());
  // Instance 2 stays non-host; instance 9 doesn't exist here.
  std::vector<BatchPut> items = {
      {1, "good", "v"}, {2, "wrong-host", "v"}, {9, "no-instance", "v"},
      {1, "also-good", "v"}};
  std::vector<Status> out;
  ASSERT_TRUE(ds.MultiPut(items, &out).ok());
  EXPECT_TRUE(out[0].ok());
  EXPECT_TRUE(out[1].IsUnavailable());
  EXPECT_TRUE(out[2].IsNotFound());
  EXPECT_TRUE(out[3].ok());

  // Whole-server-down is the only overall failure.
  ds.SetDown(true);
  EXPECT_TRUE(ds.MultiPut(items, &out).IsUnavailable());
}

TEST(DataServerBatchTest, BatchReplicationReachesSlave) {
  DataServer host(0, /*sync_replication=*/false);
  DataServer slave(1, false);
  ASSERT_TRUE(host.CreateInstance(7, EngineOptions()).ok());
  ASSERT_TRUE(slave.CreateInstance(7, EngineOptions()).ok());
  ASSERT_TRUE(host.SetHostRole(7, true).ok());
  ASSERT_TRUE(host.SetSlave(7, &slave).ok());

  std::vector<BatchIncrDouble> items = {
      {7, "x", 1.25}, {7, "x", 2.5}, {7, "y", 3.0}};
  std::vector<Result<double>> out;
  ASSERT_TRUE(host.MultiIncrDouble(items, &out).ok());
  EXPECT_DOUBLE_EQ(out[1].value(), 3.75);
  // The whole run ships as one record; pending still counts logical ops.
  EXPECT_EQ(host.PendingReplication(), 3u);
  ASSERT_TRUE(host.FlushReplication().ok());
  EXPECT_EQ(host.PendingReplication(), 0u);

  ASSERT_TRUE(slave.SetHostRole(7, true).ok());
  EXPECT_EQ(slave.Get(7, "x").value(), EncodeDouble(3.75));
  EXPECT_EQ(slave.Get(7, "y").value(), EncodeDouble(3.0));
}

// --- client grouped dispatch ------------------------------------------------

TEST(ClientBatchTest, MultiIncrDoubleStitchesInputOrder) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  std::vector<std::pair<std::string, double>> adds;
  for (int i = 0; i < 50; ++i) {
    adds.emplace_back("k" + std::to_string(i % 20), 0.25 * (i % 3 + 1));
  }
  std::vector<Result<double>> out;
  ASSERT_TRUE(client.MultiIncrDouble(adds, &out).ok());
  ASSERT_EQ(out.size(), adds.size());
  // Reference: the same running totals computed locally, in input order.
  std::map<std::string, double> totals;
  for (size_t i = 0; i < adds.size(); ++i) {
    totals[adds[i].first] += adds[i].second;
    ASSERT_TRUE(out[i].ok()) << i;
    EXPECT_DOUBLE_EQ(out[i].value(), totals[adds[i].first]) << i;
  }
}

TEST(ClientBatchTest, MultiGetBatchKeepsPerKeyStatuses) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  ASSERT_TRUE(client.Put("a", "1").ok());
  ASSERT_TRUE(client.Put("c", "3").ok());
  std::vector<Result<std::string>> out;
  ASSERT_TRUE(client.MultiGetBatch({"a", "b", "c", "d"}, &out).ok());
  EXPECT_EQ(out[0].value(), "1");
  EXPECT_TRUE(out[1].status().IsNotFound());
  EXPECT_EQ(out[2].value(), "3");
  EXPECT_TRUE(out[3].status().IsNotFound());

  // A missing key never discards its siblings in the legacy shape either.
  auto legacy = client.MultiGet({"a", "b", "c"});
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ((*legacy)[0].value(), "1");
  EXPECT_FALSE((*legacy)[1].has_value());

  std::vector<Result<double>> dbl;
  ASSERT_TRUE(client.Put("num", EncodeDouble(2.5)).ok());
  ASSERT_TRUE(client.MultiGetDouble({"num", "absent"}, 7.0, &dbl).ok());
  EXPECT_DOUBLE_EQ(dbl[0].value(), 2.5);
  EXPECT_DOUBLE_EQ(dbl[1].value(), 7.0);
}

TEST(ClientBatchTest, OneLogicalCallRecordsOneBatchSample) {
  SetMetricsEnabled(true);
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  auto& reg = MetricRegistry::Default();
  auto* batch_read = reg.GetHistogram("tdstore.client.batch_read_us");
  auto* point_read = reg.GetHistogram("tdstore.client.read_us");
  auto* batch_keys = reg.GetCounter("tdstore.client.batch_keys");
  auto* host_batches = reg.GetCounter("tdstore.client.host_batches");
  const uint64_t batch_before = batch_read->Snap().count;
  const uint64_t point_before = point_read->Snap().count;
  const uint64_t keys_before = batch_keys->Value();
  const uint64_t hosts_before = host_batches->Value();

  std::vector<Result<std::string>> out;
  ASSERT_TRUE(
      client.MultiGetBatch({"a", "b", "c", "d", "e", "f", "g"}, &out).ok());

  // One batched sample for the whole call — not one per key — and the
  // point-op instruments untouched.
  EXPECT_EQ(batch_read->Snap().count, batch_before + 1);
  EXPECT_EQ(point_read->Snap().count, point_before);
  EXPECT_EQ(batch_keys->Value(), keys_before + 7);
  // At most one server call per host.
  EXPECT_LE(host_batches->Value() - hosts_before, 3u);
}

TEST(ClientBatchTest, InvocationsScaleWithHostsNotKeys) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  ASSERT_TRUE(client.Put("warm", "route").ok());
  for (int s = 0; s < 3; ++s) (*cluster)->data_server(s)->ResetCounters();

  std::vector<std::pair<std::string, double>> adds;
  for (int i = 0; i < 30; ++i) adds.emplace_back("ik" + std::to_string(i), 1.0);
  std::vector<Result<double>> out;
  ASSERT_TRUE(client.MultiIncrDouble(adds, &out).ok());

  int64_t invocations = 0;
  int64_t writes = 0;
  for (int s = 0; s < 3; ++s) {
    invocations += (*cluster)->data_server(s)->invocations();
    writes += (*cluster)->data_server(s)->writes();
  }
  EXPECT_LE(invocations, 3);  // one entry call per host
  EXPECT_EQ(writes, 30);      // per-op accounting unchanged
}

// --- parity: batched ops are bit-identical to point ops ---------------------

TEST(BatchParityTest, BatchedIncrementsBitIdenticalToPointOps) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());

  // A scripted op sequence with repeated keys and rounding-hostile deltas:
  // the same logical stream runs through the point path ("p:"), the grouped
  // batch path ("b:") and the write-behind BatchWriter ("w:").
  std::vector<std::pair<int, double>> script;
  for (int i = 0; i < 400; ++i) {
    script.emplace_back(i * 31 % 40, 0.1 * static_cast<double>(i % 7 + 1));
  }

  for (const auto& [k, d] : script) {
    ASSERT_TRUE(client.IncrDouble("p:" + std::to_string(k), d).ok());
  }

  BatchWriter::Options wopts;
  wopts.max_ops = 1 << 20;  // only explicit flushes
  BatchWriter writer(&client, wopts);
  for (size_t start = 0; start < script.size(); start += 64) {
    std::vector<std::pair<std::string, double>> chunk;
    for (size_t i = start; i < std::min(start + 64, script.size()); ++i) {
      chunk.emplace_back("b:" + std::to_string(script[i].first),
                         script[i].second);
      writer.IncrDouble("w:" + std::to_string(script[i].first),
                        script[i].second);
    }
    std::vector<Result<double>> out;
    ASSERT_TRUE(client.MultiIncrDouble(chunk, &out).ok());
    ASSERT_TRUE(writer.Flush().ok());
  }

  for (int k = 0; k < 40; ++k) {
    auto point = client.Get("p:" + std::to_string(k));
    auto batched = client.Get("b:" + std::to_string(k));
    auto behind = client.Get("w:" + std::to_string(k));
    ASSERT_TRUE(point.ok()) << k;
    ASSERT_TRUE(batched.ok()) << k;
    ASSERT_TRUE(behind.ok()) << k;
    // Raw byte equality — same accumulation order means same rounding.
    EXPECT_EQ(*point, *batched) << k;
    EXPECT_EQ(*point, *behind) << k;
  }
}

// --- failover between batch build and dispatch ------------------------------

TEST(ClientBatchTest, FailoverRetriesOnlyFailedSubBatchExactlyOnce) {
  auto cluster = Cluster::Create(SmallCluster());  // sync replication
  ASSERT_TRUE(cluster.ok());
  Client stale(cluster->get());
  ASSERT_TRUE(stale.Put("prime", "route").ok());  // cache pre-failover route
  const int64_t refreshes_before = stale.route_refreshes();

  // The route table changes AFTER the client built its view of the world:
  // its next batch is grouped against dead placements for every instance
  // server 0 hosted.
  ASSERT_TRUE((*cluster)->FailDataServer(0).ok());

  std::vector<std::pair<std::string, double>> adds;
  for (int i = 0; i < 60; ++i) adds.emplace_back("fo" + std::to_string(i), 1.0);
  std::vector<Result<double>> out;
  ASSERT_TRUE(stale.MultiIncrDouble(adds, &out).ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(out[i].ok()) << i << ": " << out[i].status().ToString();
    // 1.0 exactly: a doubled retry would return 2.0, a lost one would
    // surface as an error or stale read below.
    EXPECT_DOUBLE_EQ(out[i].value(), 1.0) << i;
  }
  EXPECT_GT(stale.route_refreshes(), refreshes_before);

  Client fresh(cluster->get());
  for (int i = 0; i < 60; ++i) {
    auto v = fresh.GetDouble("fo" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_DOUBLE_EQ(*v, 1.0) << "lost or doubled increment on key " << i;
  }
}

TEST(ClientBatchTest, AsyncReplicationFlushThenFailoverKeepsBatchedWrites) {
  Cluster::Options options = SmallCluster();
  options.sync_replication = false;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());

  std::vector<std::pair<std::string, double>> adds;
  for (int i = 0; i < 40; ++i) adds.emplace_back("ar" + std::to_string(i), 2.5);
  std::vector<Result<double>> out;
  ASSERT_TRUE(client.MultiIncrDouble(adds, &out).ok());
  // Batched writes queue replication records; drain them, then fail over.
  ASSERT_TRUE((*cluster)->FlushReplication().ok());
  ASSERT_TRUE((*cluster)->FailDataServer(0).ok());

  ASSERT_TRUE(client.MultiIncrDouble(adds, &out).ok());
  Client fresh(cluster->get());
  for (int i = 0; i < 40; ++i) {
    auto v = fresh.GetDouble("ar" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_DOUBLE_EQ(*v, 5.0) << i;
  }
}

// --- ScanPrefix on a permuted route table (regression) ----------------------

TEST(ClientBatchTest, ScanPrefixRetryLooksUpPlacementByInstanceId) {
  // Regression: the retry after a failed instance scan used to index
  // route_.placements[p.instance_id], silently assuming placements[i]
  // .instance_id == i. A permuted (but semantically identical) route table
  // plus a mid-scan failover exposes that.
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  auto table = (*cluster)->config().GetRouteTable();
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->placements.size(), 8u);
  std::rotate(table->placements.begin(), table->placements.begin() + 3,
              table->placements.end());
  ASSERT_TRUE((*cluster)->config().Install(std::move(*table)).ok());

  Client client(cluster->get());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.Put("scan:" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE((*cluster)->FailDataServer(0).ok());

  std::map<std::string, int> seen;
  ASSERT_TRUE(client
                  .ScanPrefix("scan:",
                              [&](std::string_view k, std::string_view) {
                                ++seen[std::string(k)];
                                return true;
                              })
                  .ok());
  EXPECT_EQ(seen.size(), 50u);
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << key << " visited " << count << " times";
  }
}

// --- BatchWriter ------------------------------------------------------------

TEST(BatchWriterTest, CoalescesPutsLastValueWins) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  BatchWriter writer(&client, {});
  Status s1 = Status::Internal("not fired");
  Status s2 = Status::Internal("not fired");
  writer.Put("k", "v1", [&](const Status& s) { s1 = s; });
  writer.Put("k", "v2", [&](const Status& s) { s2 = s; });
  EXPECT_EQ(writer.pending(), 1u);
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_TRUE(s1.ok());  // superseded op's callback still fires
  EXPECT_TRUE(s2.ok());
  EXPECT_EQ(client.Get("k").value(), "v2");
}

TEST(BatchWriterTest, NeverCoalescesIncrements) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  BatchWriter writer(&client, {});
  double v1 = 0.0;
  double v2 = 0.0;
  writer.IncrDouble("k", 0.1, [&](const Result<double>& r) { v1 = r.value(); });
  writer.IncrDouble("k", 0.2, [&](const Result<double>& r) { v2 = r.value(); });
  EXPECT_EQ(writer.pending(), 2u);  // two ops staged, not one merged delta
  ASSERT_TRUE(writer.Flush().ok());
  // Callbacks observe the same running values the point path would return.
  EXPECT_DOUBLE_EQ(v1, 0.1);
  EXPECT_DOUBLE_EQ(v2, 0.1 + 0.2);
  EXPECT_EQ(client.Get("k").value(), EncodeDouble(0.1 + 0.2));
}

TEST(BatchWriterTest, KindConflictOnKeyFlushesFirst) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  BatchWriter writer(&client, {});
  writer.PutDouble("k", 2.0);
  EXPECT_EQ(writer.flushes(), 0);
  writer.IncrDouble("k", 1.0);  // put must land before the incr is staged
  EXPECT_EQ(writer.flushes(), 1);
  EXPECT_EQ(writer.pending(), 1u);
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_DOUBLE_EQ(client.GetDouble("k").value(), 3.0);
}

TEST(BatchWriterTest, AutoFlushBySizeAndAge) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());

  BatchWriter::Options by_size;
  by_size.max_ops = 3;
  BatchWriter sized(&client, by_size);
  sized.IncrDouble("s1", 1.0);
  sized.IncrDouble("s2", 1.0);
  EXPECT_EQ(sized.flushes(), 0);
  sized.IncrDouble("s3", 1.0);
  EXPECT_EQ(sized.flushes(), 1);
  EXPECT_EQ(sized.pending(), 0u);

  BatchWriter::Options by_age;
  by_age.max_age_micros = 1000;
  BatchWriter aged(&client, by_age);
  aged.IncrDouble("a1", 1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(aged.flushes(), 0);  // age checked at the next staging call
  aged.IncrDouble("a2", 1.0);
  EXPECT_EQ(aged.flushes(), 1);
  EXPECT_EQ(aged.pending(), 0u);
  EXPECT_DOUBLE_EQ(client.GetDouble("a1").value(), 1.0);
}

TEST(BatchWriterTest, SurfacesErrorsThroughCallbacksAndLastError) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  for (int s = 0; s < 3; ++s) (*cluster)->data_server(s)->SetDown(true);

  BatchWriter writer(&client, {});
  Status seen = Status::OK();
  writer.PutDouble("k", 1.0, [&](const Status& s) { seen = s; });
  EXPECT_FALSE(writer.Flush().ok());
  EXPECT_TRUE(seen.IsUnavailable());
  EXPECT_FALSE(writer.last_error().ok());
  writer.ClearError();
  EXPECT_TRUE(writer.last_error().ok());
}

// --- concurrency (ThreadSanitizer workload) ---------------------------------

TEST(ClientBatchTest, ConcurrentBatchClientsStayConsistent) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cluster] {
      Client client(cluster->get());
      std::vector<std::pair<std::string, double>> adds;
      for (int i = 0; i < 32; ++i) {
        adds.emplace_back("cc" + std::to_string(i), 1.0);
      }
      for (int r = 0; r < kRounds; ++r) {
        std::vector<Result<double>> out;
        EXPECT_TRUE(client.MultiIncrDouble(adds, &out).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  Client reader(cluster->get());
  for (int i = 0; i < 32; ++i) {
    auto v = reader.GetDouble("cc" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_DOUBLE_EQ(*v, static_cast<double>(kThreads * kRounds)) << i;
  }
}

}  // namespace
}  // namespace tencentrec::tdstore
