#include <gtest/gtest.h>

#include "core/assoc.h"
#include "core/content.h"
#include "core/ctr.h"
#include "core/demographic.h"
#include "core/recommender.h"

namespace tencentrec::core {
namespace {

UserAction Act(UserId user, ItemId item, ActionType type, EventTime ts,
               Demographics d = {}) {
  UserAction a;
  a.user = user;
  a.item = item;
  a.action = type;
  a.timestamp = ts;
  a.demographics = d;
  return a;
}

Demographics Male(uint8_t age = 2, uint16_t region = 0) {
  Demographics d;
  d.gender = Demographics::kMale;
  d.age_band = age;
  d.region = region;
  return d;
}

Demographics Female(uint8_t age = 2, uint16_t region = 0) {
  Demographics d;
  d.gender = Demographics::kFemale;
  d.age_band = age;
  d.region = region;
  return d;
}

// --- content-based (CB) -------------------------------------------------------

ContentBased::Options CbOptions() {
  ContentBased::Options options;
  options.profile_half_life = Hours(12);
  return options;
}

TEST(ContentBasedTest, LearnsProfileAndRecommends) {
  ContentBased cb(CbOptions());
  cb.RegisterItem(1, {{100, 1.0}}, 0);
  cb.RegisterItem(2, {{100, 1.0}}, 0);  // same topic as 1
  cb.RegisterItem(3, {{200, 1.0}}, 0);  // different topic
  cb.ProcessAction(Act(1, 1, ActionType::kRead, Seconds(10)));

  auto recs = cb.RecommendForUser(1, 5, Seconds(20));
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 2);
  // Seen item excluded; unrelated topic absent or scored lower.
  for (const auto& r : recs) EXPECT_NE(r.item, 1);
}

TEST(ContentBasedTest, ProfileDecays) {
  ContentBased cb(CbOptions());
  cb.RegisterItem(1, {{100, 1.0}}, 0);
  cb.ProcessAction(Act(1, 1, ActionType::kRead, 0));
  auto fresh = cb.ProfileOf(1, 0);
  auto stale = cb.ProfileOf(1, Hours(24));
  ASSERT_FALSE(fresh.empty());
  ASSERT_FALSE(stale.empty());
  // After two half-lives the weight is a quarter.
  EXPECT_NEAR(stale[0].second, fresh[0].second / 4.0, 1e-9);
}

TEST(ContentBasedTest, RecentInterestDominates) {
  ContentBased cb(CbOptions());
  cb.RegisterItem(1, {{100, 1.0}}, 0);
  cb.RegisterItem(2, {{200, 1.0}}, 0);
  cb.RegisterItem(3, {{100, 1.0}}, 0);
  cb.RegisterItem(4, {{200, 1.0}}, 0);
  // Old interest in topic 100; fresh interest in topic 200.
  cb.ProcessAction(Act(1, 1, ActionType::kRead, 0));
  cb.ProcessAction(Act(1, 2, ActionType::kRead, Hours(36)));
  auto recs = cb.RecommendForUser(1, 2, Hours(36));
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 4);  // topic 200 item outranks topic 100 item
}

TEST(ContentBasedTest, NewItemImmediatelyRecommendable) {
  ContentBased cb(CbOptions());
  cb.RegisterItem(1, {{100, 1.0}}, 0);
  cb.ProcessAction(Act(1, 1, ActionType::kRead, Seconds(1)));
  // A brand-new item on the user's topic appears...
  cb.RegisterItem(50, {{100, 1.0}}, Seconds(2));
  auto recs = cb.RecommendForUser(1, 5, Seconds(3));
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 50);
}

TEST(ContentBasedTest, ExpiredItemsDropOut) {
  ContentBased::Options options = CbOptions();
  options.item_ttl = Days(1);
  ContentBased cb(options);
  cb.RegisterItem(1, {{100, 1.0}}, 0);
  cb.RegisterItem(2, {{100, 1.0}}, 0);
  cb.ProcessAction(Act(1, 1, ActionType::kRead, Seconds(1)));
  EXPECT_FALSE(cb.RecommendForUser(1, 5, Hours(1)).empty());
  EXPECT_TRUE(cb.RecommendForUser(1, 5, Days(3)).empty());  // all expired
}

TEST(ContentBasedTest, RemoveItemPurgesIndex) {
  ContentBased cb(CbOptions());
  cb.RegisterItem(1, {{100, 1.0}}, 0);
  cb.RegisterItem(2, {{100, 1.0}}, 0);
  cb.ProcessAction(Act(1, 1, ActionType::kRead, Seconds(1)));
  cb.RemoveItem(2);
  EXPECT_FALSE(cb.HasItem(2));
  EXPECT_TRUE(cb.RecommendForUser(1, 5, Seconds(2)).empty());
}

TEST(ContentBasedTest, UntaggedActionIgnored) {
  ContentBased cb(CbOptions());
  cb.ProcessAction(Act(1, 999, ActionType::kRead, 0));
  EXPECT_TRUE(cb.ProfileOf(1, 0).empty());
}

// --- demographic (DB) ----------------------------------------------------------

DemographicRecommender::Options DbOptions(int window_sessions = 0) {
  DemographicRecommender::Options options;
  options.session_length = Hours(1);
  options.window_sessions = window_sessions;
  return options;
}

TEST(DemographicTest, GroupsSeeTheirOwnHotItems) {
  DemographicRecommender db(DbOptions());
  for (UserId u = 1; u <= 5; ++u) {
    db.ProcessAction(Act(u, 10, ActionType::kClick, Seconds(u), Male()));
    db.ProcessAction(Act(u + 10, 20, ActionType::kClick, Seconds(u),
                         Female()));
  }
  auto male_hot = db.RecommendForUser(Male(), 1);
  auto female_hot = db.RecommendForUser(Female(), 1);
  ASSERT_FALSE(male_hot.empty());
  ASSERT_FALSE(female_hot.empty());
  EXPECT_EQ(male_hot[0].item, 10);
  EXPECT_EQ(female_hot[0].item, 20);
}

TEST(DemographicTest, UnknownDemographicsUseGlobalGroup) {
  DemographicRecommender db(DbOptions());
  db.ProcessAction(Act(1, 10, ActionType::kClick, 0, Male()));
  db.ProcessAction(Act(2, 10, ActionType::kClick, 0, Female()));
  db.ProcessAction(Act(3, 30, ActionType::kClick, 0, Male()));
  Demographics unknown;
  auto recs = db.RecommendForUser(unknown, 2);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].item, 10);  // global counts: 10 has 2, 30 has 1
}

TEST(DemographicTest, EmptyGroupFallsBackToGlobal) {
  DemographicRecommender db(DbOptions());
  db.ProcessAction(Act(1, 10, ActionType::kClick, 0, Male(2)));
  // A female user of an unseen group still gets the global list.
  auto recs = db.RecommendForUser(Female(5), 5);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 10);
}

TEST(DemographicTest, WindowForgetsOldHotness) {
  DemographicRecommender db(DbOptions(/*window_sessions=*/2));
  for (UserId u = 1; u <= 5; ++u) {
    db.ProcessAction(Act(u, 10, ActionType::kClick, Minutes(u), Male()));
  }
  db.ProcessAction(Act(9, 20, ActionType::kClick, Hours(6), Male()));
  auto recs = db.RecommendForUser(Male(), 5);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 20);  // old hot item expired with its sessions
  EXPECT_DOUBLE_EQ(db.Popularity(DemographicGroup(Male()), 10), 0.0);
}

TEST(DemographicTest, ImpressionDoesNotCount) {
  DemographicRecommender db(DbOptions());
  db.ProcessAction(Act(1, 10, ActionType::kImpression, 0, Male()));
  EXPECT_TRUE(db.RecommendForUser(Male(), 5).empty());
}

// --- association rules (AR) -----------------------------------------------------

AssocRules::Options ArOptions() {
  AssocRules::Options options;
  options.linked_time = Days(3);
  options.min_support = 2.0;
  options.min_confidence = 0.05;
  return options;
}

TEST(AssocRulesTest, ConfidenceIsAsymmetric) {
  AssocRules ar(ArOptions());
  // 4 users buy A; 2 of them also buy B.
  EventTime t = 0;
  for (UserId u = 1; u <= 4; ++u) {
    ar.ProcessAction(Act(u, 1, ActionType::kPurchase, t += Seconds(1)));
  }
  for (UserId u = 1; u <= 2; ++u) {
    ar.ProcessAction(Act(u, 2, ActionType::kPurchase, t += Seconds(1)));
  }
  EXPECT_NEAR(ar.Confidence(1, 2), 0.5, 1e-9);  // 2/4
  EXPECT_NEAR(ar.Confidence(2, 1), 1.0, 1e-9);  // 2/2
}

TEST(AssocRulesTest, SupportFloorSuppressesRareRules) {
  AssocRules ar(ArOptions());
  ar.ProcessAction(Act(1, 1, ActionType::kPurchase, 0));
  ar.ProcessAction(Act(1, 2, ActionType::kPurchase, Seconds(1)));
  // Joint support 1 < min_support 2.
  EXPECT_DOUBLE_EQ(ar.Confidence(1, 2), 0.0);
  EXPECT_TRUE(ar.RecommendForItem(1, 5).empty());
}

TEST(AssocRulesTest, DuplicateActionsCountOnce) {
  AssocRules ar(ArOptions());
  for (int i = 0; i < 5; ++i) {
    ar.ProcessAction(Act(1, 1, ActionType::kPurchase, Seconds(i)));
  }
  EXPECT_DOUBLE_EQ(ar.counts().ItemCount(1), 1.0);
}

TEST(AssocRulesTest, WeakActionsIgnored) {
  AssocRules::Options options = ArOptions();
  options.min_action_weight = 2.0;  // only read and stronger
  AssocRules ar(options);
  ar.ProcessAction(Act(1, 1, ActionType::kBrowse, 0));
  EXPECT_DOUBLE_EQ(ar.counts().ItemCount(1), 0.0);
  ar.ProcessAction(Act(1, 1, ActionType::kPurchase, Seconds(1)));
  EXPECT_DOUBLE_EQ(ar.counts().ItemCount(1), 1.0);
}

TEST(AssocRulesTest, RecommendForUserExcludesOwned) {
  AssocRules ar(ArOptions());
  EventTime t = 0;
  for (UserId u = 1; u <= 4; ++u) {
    ar.ProcessAction(Act(u, 1, ActionType::kPurchase, t += Seconds(1)));
    ar.ProcessAction(Act(u, 2, ActionType::kPurchase, t += Seconds(1)));
  }
  ar.ProcessAction(Act(9, 1, ActionType::kPurchase, t += Seconds(1)));
  auto recs = ar.RecommendForUser(9, 5);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 2);
  // User 1 already owns both: nothing new to recommend.
  EXPECT_TRUE(ar.RecommendForUser(1, 5).empty());
}

// --- situational CTR -------------------------------------------------------------

SituationalCtr::Options CtrOptions(int window_sessions = 0) {
  SituationalCtr::Options options;
  options.session_length = Minutes(10);
  options.window_sessions = window_sessions;
  options.prior_strength = 10.0;
  options.base_ctr = 0.05;
  return options;
}

TEST(CtrTest, LevelKeyHierarchy) {
  Demographics full = Male(3, 7);
  EXPECT_EQ(CtrMaxLevel(Demographics{}), 0);
  EXPECT_EQ(CtrMaxLevel(Male(0)), 1);
  EXPECT_EQ(CtrMaxLevel(Male(3)), 2);
  EXPECT_EQ(CtrMaxLevel(full), 3);
  // Distinct levels and situations yield distinct keys for the same item.
  EXPECT_NE(CtrLevelKey(1, 0, full), CtrLevelKey(1, 1, full));
  EXPECT_NE(CtrLevelKey(1, 3, Male(3, 7)), CtrLevelKey(1, 3, Male(3, 8)));
  EXPECT_NE(CtrLevelKey(1, 1, Male()), CtrLevelKey(1, 1, Female()));
  EXPECT_NE(CtrLevelKey(1, 0, full), CtrLevelKey(2, 0, full));
}

TEST(CtrTest, EstimatesConvergeToEmpiricalRate) {
  SituationalCtr ctr(CtrOptions());
  Demographics d = Male(2, 1);
  for (int i = 0; i < 1000; ++i) {
    ctr.RecordImpression(1, d, Seconds(i));
    if (i % 5 == 0) ctr.RecordClick(1, d, Seconds(i));  // 20% CTR
  }
  EXPECT_NEAR(ctr.PredictCtr(1, d), 0.2, 0.02);
}

TEST(CtrTest, SituationalDifference) {
  SituationalCtr ctr(CtrOptions());
  // Males click ad 1 at 30%, females at 2%.
  for (int i = 0; i < 400; ++i) {
    ctr.RecordImpression(1, Male(), Seconds(i));
    if (i % 10 < 3) ctr.RecordClick(1, Male(), Seconds(i));
    ctr.RecordImpression(1, Female(), Seconds(i));
    if (i % 50 == 0) ctr.RecordClick(1, Female(), Seconds(i));
  }
  EXPECT_GT(ctr.PredictCtr(1, Male()), 3.0 * ctr.PredictCtr(1, Female()));
}

TEST(CtrTest, SparseSituationFallsBackToParent) {
  SituationalCtr ctr(CtrOptions());
  // Dense male-level data at 25% CTR; only 2 impressions in region 9.
  for (int i = 0; i < 400; ++i) {
    ctr.RecordImpression(1, Male(2, 1), Seconds(i));
    if (i % 4 == 0) ctr.RecordClick(1, Male(2, 1), Seconds(i));
  }
  ctr.RecordImpression(1, Male(2, 9), Seconds(1000));
  ctr.RecordImpression(1, Male(2, 9), Seconds(1001));
  // The region-9 estimate shrinks toward the male/age parent, not to zero.
  EXPECT_GT(ctr.PredictCtr(1, Male(2, 9)), 0.15);
}

TEST(CtrTest, UnseenAdGetsBasePrior) {
  SituationalCtr ctr(CtrOptions());
  EXPECT_NEAR(ctr.PredictCtr(42, Male()), 0.05, 1e-9);
}

TEST(CtrTest, WindowedCountsAnswerTheSigmodQuery) {
  // §1: "During last ten seconds, what is the CTR of an advertisement among
  // the male users in Beijing, whose age is from twenty to thirty."
  SituationalCtr::Options options = CtrOptions(/*window_sessions=*/1);
  options.session_length = Seconds(10);
  SituationalCtr ctr(options);
  Demographics beijing_male_20s = Male(2, 11);
  ctr.RecordImpression(7, beijing_male_20s, Seconds(1));
  ctr.RecordClick(7, beijing_male_20s, Seconds(2));
  auto counts = ctr.SituationCounts(7, beijing_male_20s);
  EXPECT_DOUBLE_EQ(counts.impressions, 1.0);
  EXPECT_DOUBLE_EQ(counts.clicks, 1.0);
  // Twenty seconds later the window has rolled over.
  ctr.RecordImpression(8, beijing_male_20s, Seconds(25));
  counts = ctr.SituationCounts(7, beijing_male_20s);
  EXPECT_DOUBLE_EQ(counts.impressions, 0.0);
}

TEST(CtrTest, RankByCtrOrdersCandidates) {
  SituationalCtr ctr(CtrOptions());
  Demographics d = Male();
  for (int i = 0; i < 300; ++i) {
    ctr.RecordImpression(1, d, Seconds(i));
    ctr.RecordImpression(2, d, Seconds(i));
    if (i % 4 == 0) ctr.RecordClick(1, d, Seconds(i));   // 25%
    if (i % 20 == 0) ctr.RecordClick(2, d, Seconds(i));  // 5%
  }
  auto ranked = ctr.RankByCtr({2, 1}, d, 2);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].item, 1);
}

TEST(CtrTest, OtherActionTypesIgnored) {
  SituationalCtr ctr(CtrOptions());
  ctr.ProcessAction(Act(1, 1, ActionType::kPurchase, 0, Male()));
  auto counts = ctr.SituationCounts(1, Male());
  EXPECT_DOUBLE_EQ(counts.impressions, 0.0);
  EXPECT_DOUBLE_EQ(counts.clicks, 0.0);
}

// --- hybrid recommender (§4.2/§4.3) ----------------------------------------------

TEST(HybridRecommenderTest, DbComplementsColdStart) {
  HybridRecommender::Options options;
  options.cf.linked_time = Days(30);
  HybridRecommender hybrid(options);
  // Popular items among males.
  EventTime t = 0;
  for (UserId u = 1; u <= 5; ++u) {
    hybrid.ProcessAction(Act(u, 10, ActionType::kClick, t += Seconds(1),
                             Male()));
  }
  // A brand-new male user has no CF signal -> gets group hot items.
  auto recs = hybrid.Recommend(999, Male(), 3);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 10);
}

TEST(HybridRecommenderTest, CfResultsComeFirst) {
  HybridRecommender::Options options;
  options.cf.linked_time = Days(30);
  HybridRecommender hybrid(options);
  EventTime t = 0;
  // (1, 2) co-clicked widely; item 50 merely popular.
  for (UserId u = 1; u <= 6; ++u) {
    hybrid.ProcessAction(Act(u, 1, ActionType::kClick, t += Seconds(1)));
    hybrid.ProcessAction(Act(u, 2, ActionType::kClick, t += Seconds(1)));
    hybrid.ProcessAction(Act(u + 50, 50, ActionType::kClick,
                             t += Seconds(1)));
  }
  hybrid.ProcessAction(Act(99, 1, ActionType::kClick, t += Seconds(1)));
  auto recs = hybrid.Recommend(99, Demographics{}, 3);
  ASSERT_GE(recs.size(), 2u);
  EXPECT_EQ(recs[0].item, 2);  // CF hit leads, hot item fills the tail
}

TEST(HybridRecommenderTest, ComplementExcludesRecentItems) {
  HybridRecommender::Options options;
  options.cf.linked_time = Days(30);
  HybridRecommender hybrid(options);
  EventTime t = 0;
  for (UserId u = 1; u <= 5; ++u) {
    hybrid.ProcessAction(Act(u, 10, ActionType::kClick, t += Seconds(1)));
  }
  // User 99 just interacted with the hot item itself.
  hybrid.ProcessAction(Act(99, 10, ActionType::kClick, t += Seconds(1)));
  auto recs = hybrid.Recommend(99, Demographics{}, 3);
  for (const auto& r : recs) EXPECT_NE(r.item, 10);
}

// --- extra edge cases -----------------------------------------------------------

TEST(ContentBasedTest, SeenCapResetsWithoutCrashing) {
  ContentBased::Options options = CbOptions();
  options.seen_cap = 4;
  ContentBased cb(options);
  for (ItemId i = 1; i <= 10; ++i) {
    cb.RegisterItem(i, {{100, 1.0}}, 0);
  }
  for (ItemId i = 1; i <= 10; ++i) {
    cb.ProcessAction(Act(1, i, ActionType::kRead, Seconds(i)));
  }
  // The cap wiped older seen-markers; recommendations still work and never
  // include the most recent (still-tracked) item.
  auto recs = cb.RecommendForUser(1, 10, Seconds(20));
  for (const auto& r : recs) EXPECT_NE(r.item, 10);
}

TEST(AssocRulesTest, PerUserItemCapEvictsStalest) {
  AssocRules::Options options = ArOptions();
  options.user_items_cap = 3;
  AssocRules ar(options);
  for (ItemId i = 1; i <= 6; ++i) {
    ar.ProcessAction(Act(1, i, ActionType::kPurchase, Seconds(i)));
  }
  // Only ~3 items of user 1 remain for pairing; older anchors evicted.
  // Support counts persist (window counts are not per-user), but a fresh
  // purchase pairs only with retained items.
  auto before = ar.counts().TrackedPairs();
  ar.ProcessAction(Act(1, 99, ActionType::kPurchase, Seconds(100)));
  auto added = ar.counts().TrackedPairs() - before;
  EXPECT_LE(added, 3u);
}

TEST(AssocRulesTest, LinkedTimeBoundsPairs) {
  AssocRules::Options options = ArOptions();
  options.linked_time = Hours(1);
  AssocRules ar(options);
  ar.ProcessAction(Act(1, 1, ActionType::kPurchase, Hours(0)));
  ar.ProcessAction(Act(1, 2, ActionType::kPurchase, Hours(5)));  // too late
  EXPECT_DOUBLE_EQ(ar.counts().PairCount(1, 2), 0.0);
  ar.ProcessAction(Act(1, 3, ActionType::kPurchase, Hours(5) + Minutes(10)));
  EXPECT_DOUBLE_EQ(ar.counts().PairCount(2, 3), 1.0);
}

TEST(CtrTest, RegionOnlyStopsChainAtGlobal) {
  // Region without gender/age cannot refine the chain (level 0 only).
  Demographics d;
  d.region = 5;
  EXPECT_EQ(CtrMaxLevel(d), 0);
  SituationalCtr ctr(CtrOptions());
  for (int i = 0; i < 100; ++i) {
    ctr.RecordImpression(1, d, Seconds(i));
    if (i % 2 == 0) ctr.RecordClick(1, d, Seconds(i));
  }
  // The region-less situation sees the same (global) estimate.
  EXPECT_NEAR(ctr.PredictCtr(1, d), ctr.PredictCtr(1, Demographics{}), 1e-12);
}

TEST(DemographicTest, WeightsScalePopularity) {
  DemographicRecommender db(DbOptions());
  db.ProcessAction(Act(1, 10, ActionType::kBrowse, 0, Male()));    // 1.0
  db.ProcessAction(Act(2, 20, ActionType::kPurchase, 0, Male()));  // 3.0
  auto hot = db.RecommendForUser(Male(), 2);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0].item, 20);  // one purchase outweighs one browse
  EXPECT_DOUBLE_EQ(hot[0].score, 3.0);
  EXPECT_DOUBLE_EQ(hot[1].score, 1.0);
}

}  // namespace
}  // namespace tencentrec::core
