#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/random.h"
#include "core/itemcf/item_cf.h"
#include "engine/tencentrec.h"
#include "topo/action_codec.h"
#include "topo/blob_codec.h"
#include "topo/bolts.h"
#include "topo/combiner.h"
#include "topo/spouts.h"
#include "topo/store_cache.h"
#include "topo/topology_factory.h"

namespace tencentrec::topo {
namespace {

using core::ActionType;
using core::Demographics;
using core::ItemId;
using core::UserAction;
using core::UserId;

UserAction Act(UserId user, ItemId item, ActionType type, EventTime ts,
               Demographics d = {}) {
  UserAction a;
  a.user = user;
  a.item = item;
  a.action = type;
  a.timestamp = ts;
  a.demographics = d;
  return a;
}

// --- blob codecs --------------------------------------------------------------

TEST(BlobCodecTest, UserHistoryRoundTrip) {
  core::UserHistory history;
  history.Restore(1, 2.0, Hours(1));
  history.Restore(7, 3.0, Hours(2));
  auto decoded = DecodeUserHistory(EncodeUserHistory(history));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 2u);
  EXPECT_DOUBLE_EQ(decoded->RatingOf(1), 2.0);
  EXPECT_DOUBLE_EQ(decoded->RatingOf(7), 3.0);
}

TEST(BlobCodecTest, EmptyHistoryRoundTrip) {
  core::UserHistory history;
  auto decoded = DecodeUserHistory(EncodeUserHistory(history));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 0u);
}

TEST(BlobCodecTest, CorruptHistoryRejected) {
  EXPECT_TRUE(DecodeUserHistory("xyz").status().IsCorruption());
  core::UserHistory history;
  history.Restore(1, 2.0, 3);
  std::string blob = EncodeUserHistory(history);
  blob.pop_back();  // truncated record
  EXPECT_TRUE(DecodeUserHistory(blob).status().IsCorruption());
  blob = EncodeUserHistory(history) + "x";  // trailing bytes
  EXPECT_TRUE(DecodeUserHistory(blob).status().IsCorruption());
}

TEST(BlobCodecTest, ScoredListRoundTrip) {
  core::Recommendations list = {{5, 0.9}, {3, 0.7}, {8, 0.1}};
  auto decoded = DecodeScoredList(EncodeScoredList(list));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, list);
  EXPECT_TRUE(DecodeScoredList("??").status().IsCorruption());
}

TEST(BlobCodecTest, TagVectorAndItemListRoundTrip) {
  core::TagVector tags = {{10, 1.0}, {20, 0.5}};
  auto dtags = DecodeTagVector(EncodeTagVector(tags));
  ASSERT_TRUE(dtags.ok());
  EXPECT_EQ(*dtags, tags);

  std::vector<ItemId> items = {1, 2, 99};
  auto ditems = DecodeItemList(EncodeItemList(items));
  ASSERT_TRUE(ditems.ok());
  EXPECT_EQ(*ditems, items);
}

TEST(BlobCodecTest, ContentProfileRoundTrip) {
  ContentProfileBlob profile;
  profile.last_update = Hours(5);
  profile.weights = {{1, 0.5}, {9, 2.0}};
  auto decoded = DecodeContentProfile(EncodeContentProfile(profile));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->last_update, Hours(5));
  EXPECT_EQ(decoded->weights, profile.weights);
}

TEST(BlobCodecTest, DoublePairRoundTrip) {
  auto decoded = DecodeDoublePair(EncodeDoublePair(1.5, -2.5));
  ASSERT_TRUE(decoded.ok());
  EXPECT_DOUBLE_EQ(decoded->first, 1.5);
  EXPECT_DOUBLE_EQ(decoded->second, -2.5);
}

// --- action codec ---------------------------------------------------------------

TEST(ActionCodecTest, TupleRoundTrip) {
  Demographics d;
  d.gender = Demographics::kFemale;
  d.age_band = 3;
  d.region = 11;
  UserAction a = Act(42, 7, ActionType::kShare, Hours(9), d);
  auto decoded = ActionFromTuple(ActionToTuple(a));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->user, 42);
  EXPECT_EQ(decoded->item, 7);
  EXPECT_EQ(decoded->action, ActionType::kShare);
  EXPECT_EQ(decoded->timestamp, Hours(9));
  EXPECT_EQ(decoded->demographics, d);
}

TEST(ActionCodecTest, PayloadRoundTrip) {
  UserAction a = Act(1e9, 2e9, ActionType::kPurchase, Days(100));
  a.ingest_micros = 123456789;
  auto decoded = DecodeActionPayload(EncodeActionPayload(a));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->user, a.user);
  EXPECT_EQ(decoded->item, a.item);
  EXPECT_EQ(decoded->action, a.action);
  EXPECT_EQ(decoded->ingest_micros, 123456789u);
}

TEST(ActionCodecTest, DecodesLegacyPayloadWithoutIngest) {
  // Records written before the ingest stamp are 29 bytes (37 before the
  // trace id); both must still decode (disk-cached TDAccess history stays
  // replayable), with the missing trailing fields zero.
  UserAction a = Act(77, 88, ActionType::kClick, Hours(3));
  a.ingest_micros = 42;
  a.trace_id = 7;
  std::string payload = EncodeActionPayload(a);
  ASSERT_EQ(payload.size(), 45u);
  auto decoded = DecodeActionPayload(std::string_view(payload).substr(0, 29));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->user, 77);
  EXPECT_EQ(decoded->item, 88);
  EXPECT_EQ(decoded->action, ActionType::kClick);
  EXPECT_EQ(decoded->ingest_micros, 0u);
  EXPECT_EQ(decoded->trace_id, 0u);
  auto mid = DecodeActionPayload(std::string_view(payload).substr(0, 37));
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->ingest_micros, 42u);
  EXPECT_EQ(mid->trace_id, 0u);
}

TEST(ActionCodecTest, TupleCarriesIngestStamp) {
  UserAction a = Act(5, 6, ActionType::kBrowse, Hours(1));
  a.ingest_micros = 987654321;
  auto decoded = ActionFromTuple(ActionToTuple(a));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->ingest_micros, 987654321u);
}

TEST(ActionCodecTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeActionPayload("short").ok());
  EXPECT_FALSE(ActionFromTuple(tstorm::Tuple::Of({int64_t{1}})).ok());
  // Bad action code.
  tstorm::Tuple bad = tstorm::Tuple::Of(
      {int64_t{1}, int64_t{2}, int64_t{99}, int64_t{0}, int64_t{0},
       int64_t{0}, int64_t{0}, int64_t{0}});
  EXPECT_FALSE(ActionFromTuple(bad).ok());
  // Payload sizes between legacy (29) and current (37) are corrupt.
  EXPECT_FALSE(DecodeActionPayload(std::string(33, '\0')).ok());
}

// --- cache & combiner -------------------------------------------------------------

class CacheFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tdstore::Cluster::Options options;
    options.num_data_servers = 2;
    options.num_instances = 4;
    auto cluster = tdstore::Cluster::Create(options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    client_ = std::make_unique<tdstore::Client>(cluster_.get());
  }

  std::unique_ptr<tdstore::Cluster> cluster_;
  std::unique_ptr<tdstore::Client> client_;
};

TEST_F(CacheFixture, ReadThroughCachesHits) {
  StoreCache cache(client_.get(), 16);
  ASSERT_TRUE(client_->Put("k", "v").ok());
  auto first = cache.Get("k");
  ASSERT_TRUE(first.ok());
  auto second = cache.Get("k");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST_F(CacheFixture, WriteThroughVisibleToOtherReaders) {
  StoreCache cache(client_.get(), 16);
  ASSERT_TRUE(cache.Put("k", "v1").ok());
  // Another worker reading TDStore directly sees the write immediately.
  auto direct = client_->Get("k");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*direct, "v1");
}

TEST_F(CacheFixture, AddDoubleUsesCachedValue) {
  StoreCache cache(client_.get(), 16);
  ASSERT_TRUE(cache.AddDouble("c", 1.0).ok());
  ASSERT_TRUE(cache.AddDouble("c", 2.0).ok());
  auto v = client_->GetDouble("c");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 3.0);
  // Second add hit the cache (no second store read).
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST_F(CacheFixture, LruEvicts) {
  StoreCache cache(client_.get(), 2);
  ASSERT_TRUE(cache.Put("a", "1").ok());
  ASSERT_TRUE(cache.Put("b", "2").ok());
  ASSERT_TRUE(cache.Put("c", "3").ok());  // evicts "a"
  EXPECT_EQ(cache.size(), 2u);
  auto v = cache.Get("a");  // miss -> store
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST_F(CacheFixture, DisabledCachePassesThrough) {
  StoreCache cache(client_.get(), 16, /*enabled=*/false);
  ASSERT_TRUE(cache.Put("k", "v").ok());
  (void)cache.Get("k");
  (void)cache.Get("k");
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(CacheFixture, CapacityZeroActsAsDisabled) {
  // Regression: capacity 0 used to reach lru_.back() on an empty list
  // inside the eviction loop (undefined behavior). It now means "cache
  // disabled": all operations pass through to the store and hold nothing.
  StoreCache cache(client_.get(), /*capacity=*/0);
  ASSERT_TRUE(cache.Put("k", "v1").ok());
  auto v = cache.Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v1");
  (void)cache.Get("k");
  EXPECT_EQ(cache.stats().hits, 0);  // nothing is ever cached
  EXPECT_EQ(cache.size(), 0u);
  ASSERT_TRUE(cache.AddDouble("c", 1.5).ok());
  auto sum = cache.AddDouble("c", 1.0);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, 2.5);  // read-modify-write still correct via store
  auto direct = client_->GetDouble("c");
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ(*direct, 2.5);
}

TEST_F(CacheFixture, CapacityOneHoldsExactlyOneEntry) {
  StoreCache cache(client_.get(), /*capacity=*/1);
  ASSERT_TRUE(cache.Put("a", "1").ok());
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.Put("b", "2").ok());  // evicts "a"
  EXPECT_EQ(cache.size(), 1u);
  auto b = cache.Get("b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cache.stats().hits, 1);
  auto a = cache.Get("a");  // miss -> store, re-admitted, evicts "b"
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "1");
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.size(), 1u);
  auto b2 = cache.Get("b");
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(CombinerTest, MergesSameKey) {
  Combiner combiner;
  combiner.Add("k1", 1.0);
  combiner.Add("k1", 2.0);
  combiner.Add("k2", 5.0);
  EXPECT_EQ(combiner.pending(), 2u);

  std::map<std::string, double> flushed;
  ASSERT_TRUE(combiner
                  .Flush([&](const std::string& key, double delta) {
                    flushed[key] = delta;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_DOUBLE_EQ(flushed["k1"], 3.0);
  EXPECT_DOUBLE_EQ(flushed["k2"], 5.0);
  EXPECT_EQ(combiner.pending(), 0u);
  EXPECT_EQ(combiner.stats().added, 3);
  EXPECT_EQ(combiner.stats().flushed, 2);
}

TEST(CombinerTest, FailedWriteKeepsEntry) {
  Combiner combiner;
  combiner.Add("k", 1.0);
  EXPECT_FALSE(combiner
                   .Flush([&](const std::string&, double) {
                     return Status::Unavailable("down");
                   })
                   .ok());
  EXPECT_EQ(combiner.pending(), 1u);
}

TEST(CombinerTest, DrainHandsOverWholeBufferForBatchedFlush) {
  Combiner combiner;
  combiner.Add("k1", 1.0);
  combiner.Add("k1", 2.0);
  combiner.Add("k2", 5.0);
  std::vector<std::pair<std::string, double>> drained;
  combiner.Drain(&drained);
  EXPECT_EQ(combiner.pending(), 0u);
  std::map<std::string, double> by_key(drained.begin(), drained.end());
  EXPECT_DOUBLE_EQ(by_key["k1"], 3.0);
  EXPECT_DOUBLE_EQ(by_key["k2"], 5.0);
  EXPECT_EQ(combiner.stats().flushed, 2);
  // Failed keys can be re-buffered, restoring at-least-once.
  combiner.Add("k1", by_key["k1"]);
  EXPECT_EQ(combiner.pending(), 1u);
}

// --- event-to-store stamp guard ---------------------------------------------

// StoreBolt with the protected record hook exposed; Execute is never called.
class E2sProbeBolt : public StoreBolt {
 public:
  explicit E2sProbeBolt(const AppContext* app) : StoreBolt(app) {}
  void Execute(const tstorm::Tuple&, const tstorm::TupleSource&,
               tstorm::OutputCollector&) override {}
  using StoreBolt::RecordEventToStore;
};

TEST(EventToStoreGuardTest, UnstampedTuplesAreNeverRecorded) {
  SetMetricsEnabled(true);
  tdstore::Cluster::Options store_options;
  store_options.num_data_servers = 2;
  store_options.num_instances = 4;
  auto cluster = tdstore::Cluster::Create(store_options);
  ASSERT_TRUE(cluster.ok());
  AppOptions options;
  options.app = "e2sguard";
  AppContext app(cluster->get(), options);
  E2sProbeBolt bolt(&app);
  tstorm::TaskContext ctx;
  ctx.component_name = "probe";
  bolt.Prepare(ctx);

  auto* hist = MetricRegistry::Default().GetHistogram(
      "topo.e2sguard.probe.event_to_store_us");
  const uint64_t before = hist->Snap().count;
  // Combiner-flush tuples and legacy payloads carry ingest == 0; recording
  // them would put a full MonoMicros() epoch into the latency histogram.
  bolt.RecordEventToStore(0);
  EXPECT_EQ(hist->Snap().count, before);
  bolt.RecordEventToStore(MonoMicros());
  EXPECT_EQ(hist->Snap().count, before + 1);
  // A stamp slightly in the future (cross-thread clock skew) clamps to 0
  // instead of wrapping to a huge unsigned delta.
  bolt.RecordEventToStore(MonoMicros() + 1'000'000);
  EXPECT_EQ(hist->Snap().count, before + 2);
  EXPECT_LT(hist->Snap().max, 1'000'000u);
}

// --- end-to-end pipeline vs. in-memory oracle -------------------------------------

engine::TencentRec::Options EngineOptions(const std::string& app) {
  engine::TencentRec::Options options;
  options.app.app = app;
  options.app.parallelism = 2;
  options.app.linked_time = Days(30);
  options.app.window_sessions = 0;
  options.app.combiner_interval = 16;
  options.app.algorithms.ctr = true;
  options.store.num_data_servers = 2;
  options.store.num_instances = 8;
  return options;
}

std::vector<UserAction> RandomActions(uint64_t seed, int n) {
  Rng rng(seed);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase};
  std::vector<UserAction> actions;
  for (int i = 0; i < n; ++i) {
    Demographics d;
    if (rng.Bernoulli(0.8)) {
      d.gender = rng.Bernoulli(0.5) ? Demographics::kMale
                                    : Demographics::kFemale;
      d.age_band = static_cast<uint8_t>(rng.UniformInt(1, 5));
    }
    actions.push_back(Act(static_cast<UserId>(1 + rng.Uniform(15)),
                          static_cast<ItemId>(1 + rng.Uniform(25)),
                          kTypes[rng.Uniform(4)], Seconds(i), d));
  }
  return actions;
}

class PipelineOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineOracleTest, CountsMatchReferenceModel) {
  const auto actions = RandomActions(GetParam(), 600);

  auto engine = engine::TencentRec::Create(EngineOptions("oracle"));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->ProcessBatch(actions).ok());

  core::PracticalItemCf::Options ref_options;
  ref_options.linked_time = Days(30);
  ref_options.window_sessions = 0;
  core::PracticalItemCf reference(ref_options);
  for (const auto& action : actions) reference.ProcessAction(action);

  // Windowed (here: cumulative) item and pair counts in TDStore must equal
  // the reference model exactly — commutative increments, single writer per
  // key, and final combiner flush guarantee it despite parallelism.
  auto& query = (*engine)->query();
  const EventTime now = Seconds(600);
  for (ItemId item = 1; item <= 25; ++item) {
    auto count = query.WindowItemCount(item, now);
    ASSERT_TRUE(count.ok());
    EXPECT_NEAR(*count, reference.counts().ItemCount(item), 1e-9)
        << "item " << item;
  }
  for (ItemId a = 1; a <= 25; ++a) {
    for (ItemId b = a + 1; b <= 25; ++b) {
      auto count = query.WindowPairCount(a, b, now);
      ASSERT_TRUE(count.ok());
      EXPECT_NEAR(*count, reference.counts().PairCount(a, b), 1e-9)
          << "pair (" << a << ", " << b << ")";
    }
  }
  // Similarities recomputed from final counts match the reference too.
  for (ItemId a = 1; a <= 25; ++a) {
    for (ItemId b = a + 1; b <= 25; ++b) {
      auto sim = query.SimilarityFromCounts(a, b, now);
      ASSERT_TRUE(sim.ok());
      EXPECT_NEAR(*sim, reference.Similarity(a, b), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineOracleTest,
                         ::testing::Values(11u, 22u, 33u));

TEST(PipelineTest, RestartDuringStreamLosesNothing) {
  // The paper's fault-tolerance claim: bolts are stateless, so crash-
  // restarting them mid-stream must leave the final TDStore state
  // identical (§3.3/§5.1).
  const auto actions = RandomActions(55, 800);

  auto baseline = engine::TencentRec::Create(EngineOptions("base"));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE((*baseline)->ProcessBatch(actions).ok());

  auto crashed = engine::TencentRec::Create(EngineOptions("crash"));
  ASSERT_TRUE(crashed.ok());
  ASSERT_TRUE((*crashed)
                  ->ProcessBatch(actions, {"item_count", "cf_pair",
                                           "user_history"})
                  .ok());
  // Restarts actually happened.
  uint64_t restarts = 0;
  for (const auto& m : (*crashed)->last_metrics()) restarts += m.restarts;
  EXPECT_GT(restarts, 0u);

  const EventTime now = Seconds(800);
  for (ItemId item = 1; item <= 25; ++item) {
    auto a = (*baseline)->query().WindowItemCount(item, now);
    auto b = (*crashed)->query().WindowItemCount(item, now);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_NEAR(*a, *b, 1e-9) << "item " << item;
  }
  for (ItemId x = 1; x <= 25; ++x) {
    for (ItemId y = x + 1; y <= 25; ++y) {
      auto a = (*baseline)->query().WindowPairCount(x, y, now);
      auto b = (*crashed)->query().WindowPairCount(x, y, now);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_NEAR(*a, *b, 1e-9) << "pair (" << x << ", " << y << ")";
    }
  }
}

TEST(PipelineTest, MultiBatchEqualsSingleBatch) {
  // Stateless bolts + durable state: splitting the stream into batches
  // must not change the result.
  const auto actions = RandomActions(66, 600);

  auto whole = engine::TencentRec::Create(EngineOptions("whole"));
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE((*whole)->ProcessBatch(actions).ok());

  auto split = engine::TencentRec::Create(EngineOptions("split"));
  ASSERT_TRUE(split.ok());
  std::vector<UserAction> first(actions.begin(), actions.begin() + 300);
  std::vector<UserAction> second(actions.begin() + 300, actions.end());
  ASSERT_TRUE((*split)->ProcessBatch(first).ok());
  ASSERT_TRUE((*split)->ProcessBatch(second).ok());

  const EventTime now = Seconds(600);
  for (ItemId item = 1; item <= 25; ++item) {
    auto a = (*whole)->query().WindowItemCount(item, now);
    auto b = (*split)->query().WindowItemCount(item, now);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_NEAR(*a, *b, 1e-9);
  }
}

TEST(PipelineTest, PretreatmentDropsInvalidActions) {
  std::vector<UserAction> actions = {
      Act(1, 1, ActionType::kClick, Seconds(1)),
      Act(-5, 1, ActionType::kClick, Seconds(2)),  // bad user
      Act(2, 0, ActionType::kClick, Seconds(3)),   // bad item
      Act(3, 3, ActionType::kClick, Seconds(4)),
  };
  auto engine = engine::TencentRec::Create(EngineOptions("filter"));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->ProcessBatch(actions).ok());
  for (const auto& m : (*engine)->last_metrics()) {
    if (m.component == "user_history") {
      EXPECT_EQ(m.tuples_executed, 2u);  // only the valid two got through
    }
  }
}

TEST(MultiAppTest, AppsShareOneTdStoreClusterWithoutCollisions) {
  // §6.1: "some applications share one common cluster". Two apps run their
  // topologies against the SAME TDStore cluster; the per-app key namespace
  // keeps their state disjoint.
  tdstore::Cluster::Options store_options;
  store_options.num_data_servers = 2;
  store_options.num_instances = 8;
  auto store = tdstore::Cluster::Create(store_options);
  ASSERT_TRUE(store.ok());

  AppOptions news_options;
  news_options.app = "news";
  news_options.linked_time = Days(30);
  AppContext news(store->get(), news_options);

  AppOptions shop_options;
  shop_options.app = "shop";
  shop_options.linked_time = Days(30);
  AppContext shop(store->get(), shop_options);

  // Same user/item ids in both apps, different behaviour.
  std::vector<UserAction> news_actions, shop_actions;
  EventTime t = 0;
  for (UserId u = 1; u <= 4; ++u) {
    news_actions.push_back(Act(u, 1, ActionType::kRead, t += Seconds(1)));
    news_actions.push_back(Act(u, 2, ActionType::kRead, t += Seconds(1)));
    shop_actions.push_back(Act(u, 1, ActionType::kPurchase, t += Seconds(1)));
    shop_actions.push_back(Act(u, 3, ActionType::kPurchase, t += Seconds(1)));
  }

  for (auto& [app, actions] :
       std::vector<std::pair<AppContext*, std::vector<UserAction>*>>{
           {&news, &news_actions}, {&shop, &shop_actions}}) {
    auto spec = BuildAppTopology(app, [actions] {
      return std::make_unique<VectorActionSpout>(actions);
    });
    ASSERT_TRUE(spec.ok());
    auto cluster = tstorm::LocalCluster::Create(std::move(spec).value());
    ASSERT_TRUE(cluster.ok());
    ASSERT_TRUE((*cluster)->Run().ok());
  }

  const EventTime now = t + Seconds(10);
  StoreQuery news_query(&news);
  StoreQuery shop_query(&shop);
  // News saw (1,2) together; shop saw (1,3). No cross-contamination.
  EXPECT_GT(news_query.SimilarityFromCounts(1, 2, now).value(), 0.9);
  EXPECT_DOUBLE_EQ(news_query.SimilarityFromCounts(1, 3, now).value(), 0.0);
  EXPECT_GT(shop_query.SimilarityFromCounts(1, 3, now).value(), 0.9);
  EXPECT_DOUBLE_EQ(shop_query.SimilarityFromCounts(1, 2, now).value(), 0.0);
  // Item counts differ per app (read weight 2.0 vs purchase weight 3.0).
  EXPECT_NEAR(news_query.WindowItemCount(1, now).value(), 4 * 2.0, 1e-9);
  EXPECT_NEAR(shop_query.WindowItemCount(1, now).value(), 4 * 3.0, 1e-9);
}

}  // namespace
}  // namespace tencentrec::topo
