// The batched query tier: QueryCache semantics (dedupe, TTL positive +
// negative caching, single-flight coalescing, eviction, invalidation),
// StoreCache negative caching with write-through invalidation, batched vs
// unbatched StoreQuery parity on seeded streams, the deregistered-item N+1
// regression on RecommendCb, and per-candidate degradation under per-key
// store errors.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "engine/tencentrec.h"
#include "tdstore/batch_writer.h"
#include "tdstore/client.h"
#include "tdstore/cluster.h"
#include "tdstore/codec.h"
#include "topo/blob_codec.h"
#include "topo/query.h"
#include "topo/query_cache.h"
#include "topo/store_cache.h"

namespace tencentrec {
namespace {

using core::ActionType;
using core::Demographics;
using core::ItemId;
using core::UserAction;
using core::UserId;
using topo::AppContext;
using topo::AppOptions;
using topo::QueryCache;
using topo::StoreCache;
using topo::StoreQuery;

int64_t TotalInvocations(tdstore::Cluster* cluster) {
  int64_t total = 0;
  for (int s = 0; s < cluster->num_data_servers(); ++s) {
    total += cluster->data_server(s)->invocations();
  }
  return total;
}

void ResetInvocations(tdstore::Cluster* cluster) {
  for (int s = 0; s < cluster->num_data_servers(); ++s) {
    cluster->data_server(s)->ResetCounters();
  }
}

/// The server currently hosting `key` (same hash + route table the client
/// uses).
int ServerOf(tdstore::Cluster* cluster, const std::string& key) {
  auto table = cluster->config().GetRouteTable();
  EXPECT_TRUE(table.ok());
  const size_t slot = HashString(key) % table->placements.size();
  return table->placements[slot].host_server;
}

// --- QueryCache unit tests (injected clock + counting fetch) ---

struct CountingFetch {
  int calls = 0;
  std::vector<std::string> last_keys;

  QueryCache::FetchFn Fn() {
    return [this](const std::vector<std::string>& keys,
                  std::vector<Result<std::string>>* out) {
      ++calls;
      last_keys = keys;
      out->clear();
      for (const auto& k : keys) {
        if (k.rfind("missing", 0) == 0) {
          out->push_back(Result<std::string>(Status::NotFound(k)));
        } else if (k.rfind("flaky", 0) == 0) {
          out->push_back(Result<std::string>(Status::Unavailable(k)));
        } else {
          out->push_back(std::string("v:" + k));
        }
      }
      return Status::OK();
    };
  }
};

QueryCache::Options FakeClockOptions(uint64_t* now, int64_t ttl = 1000) {
  QueryCache::Options o;
  o.ttl_micros = ttl;
  o.now_fn = [now] { return *now; };
  return o;
}

TEST(QueryCacheTest, BatchDedupesAndServesPositiveAndNegativeHits) {
  uint64_t now = 1000;
  QueryCache cache(FakeClockOptions(&now));
  CountingFetch fetch;

  std::vector<Result<std::string>> out;
  ASSERT_TRUE(
      cache.GetBatch({"a", "b", "a", "missing"}, fetch.Fn(), &out).ok());
  EXPECT_EQ(fetch.calls, 1);  // one grouped fetch for the whole plan
  EXPECT_EQ(fetch.last_keys.size(), 3u);  // "a" deduped within the batch
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(*out[0], "v:a");
  EXPECT_EQ(*out[1], "v:b");
  EXPECT_EQ(*out[2], "v:a");
  EXPECT_TRUE(out[3].status().IsNotFound());

  // Within the TTL both the value and the NotFound are served from cache.
  ASSERT_TRUE(cache.GetBatch({"a", "missing"}, fetch.Fn(), &out).ok());
  EXPECT_EQ(fetch.calls, 1);
  EXPECT_EQ(*out[0], "v:a");
  EXPECT_TRUE(out[1].status().IsNotFound());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.negative_hits, 1);
  EXPECT_EQ(stats.misses, 3);

  // Past the TTL the entries expire and the store is consulted again.
  now += 2000;
  ASSERT_TRUE(cache.GetBatch({"a", "missing"}, fetch.Fn(), &out).ok());
  EXPECT_EQ(fetch.calls, 2);
  EXPECT_EQ(fetch.last_keys.size(), 2u);
}

TEST(QueryCacheTest, TransientErrorsAreNeverCached) {
  uint64_t now = 1000;
  QueryCache cache(FakeClockOptions(&now));
  CountingFetch fetch;

  std::vector<Result<std::string>> out;
  ASSERT_TRUE(cache.GetBatch({"flaky"}, fetch.Fn(), &out).ok());
  EXPECT_TRUE(out[0].status().IsUnavailable());
  ASSERT_TRUE(cache.GetBatch({"flaky"}, fetch.Fn(), &out).ok());
  EXPECT_TRUE(out[0].status().IsUnavailable());
  EXPECT_EQ(fetch.calls, 2);  // the Unavailable was not remembered
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QueryCacheTest, InvalidateAndClearDropEntries) {
  uint64_t now = 1000;
  QueryCache cache(FakeClockOptions(&now));
  CountingFetch fetch;

  std::vector<Result<std::string>> out;
  ASSERT_TRUE(cache.GetBatch({"a", "missing"}, fetch.Fn(), &out).ok());
  EXPECT_EQ(fetch.calls, 1);

  cache.Invalidate("missing");  // the write-through hook for dead keys
  ASSERT_TRUE(cache.GetBatch({"a", "missing"}, fetch.Fn(), &out).ok());
  EXPECT_EQ(fetch.calls, 2);
  EXPECT_EQ(fetch.last_keys, std::vector<std::string>{"missing"});

  cache.Clear();
  ASSERT_TRUE(cache.GetBatch({"a", "missing"}, fetch.Fn(), &out).ok());
  EXPECT_EQ(fetch.calls, 3);
  EXPECT_EQ(fetch.last_keys.size(), 2u);
  EXPECT_GE(cache.stats().invalidations, 1);
}

TEST(QueryCacheTest, LruEvictionBoundsTheCache) {
  uint64_t now = 1000;
  auto options = FakeClockOptions(&now);
  options.capacity = 2;
  QueryCache cache(options);
  CountingFetch fetch;

  std::vector<Result<std::string>> out;
  ASSERT_TRUE(cache.GetBatch({"a", "b"}, fetch.Fn(), &out).ok());
  ASSERT_TRUE(cache.GetBatch({"c"}, fetch.Fn(), &out).ok());  // evicts "a"
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_GE(cache.stats().evictions, 1);

  ASSERT_TRUE(cache.GetBatch({"a"}, fetch.Fn(), &out).ok());  // refetched
  EXPECT_EQ(fetch.calls, 3);
}

TEST(QueryCacheTest, ZeroTtlKeepsDedupeWithoutCaching) {
  uint64_t now = 1000;
  auto options = FakeClockOptions(&now, /*ttl=*/0);
  QueryCache cache(options);
  CountingFetch fetch;

  std::vector<Result<std::string>> out;
  ASSERT_TRUE(cache.GetBatch({"a", "a"}, fetch.Fn(), &out).ok());
  EXPECT_EQ(fetch.last_keys.size(), 1u);  // dedupe still applies
  ASSERT_TRUE(cache.GetBatch({"a"}, fetch.Fn(), &out).ok());
  EXPECT_EQ(fetch.calls, 2);  // but nothing was cached
  EXPECT_EQ(cache.size(), 0u);
}

// --- single-flight coalescing: N concurrent querents, one store read ---

TEST(QueryCacheTest, ConcurrentIdenticalReadsCoalesceToOneStoreRoundTrip) {
  tdstore::Cluster::Options store_options;
  store_options.num_data_servers = 2;
  store_options.num_instances = 8;
  auto store = tdstore::Cluster::Create(store_options);
  ASSERT_TRUE(store.ok());

  AppOptions options;
  options.app = "flight";
  options.window_sessions = 0;  // cumulative: WindowItemCount reads 1 key
  AppContext app(store->get(), options);

  tdstore::Client seed(store->get());
  ASSERT_TRUE(seed.PutDouble(app.keys.ItemCount(0, 42), 7.0).ok());

  auto cache = std::make_shared<QueryCache>(QueryCache::Options{});
  constexpr int kThreads = 8;
  std::vector<std::unique_ptr<StoreQuery>> queries;
  for (int t = 0; t < kThreads; ++t) {
    queries.push_back(std::make_unique<StoreQuery>(&app, cache));
  }

  ResetInvocations(store->get());
  std::atomic<int> ready{0};
  std::vector<double> results(kThreads, -1.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      auto r = queries[t]->WindowItemCount(42, Seconds(100));
      ASSERT_TRUE(r.ok());
      results[t] = *r;
    });
  }
  for (auto& th : threads) th.join();

  for (double r : results) EXPECT_DOUBLE_EQ(r, 7.0);
  // Whether a thread coalesced onto the owner's flight or arrived after the
  // entry landed, exactly one server invocation carries all eight reads.
  EXPECT_EQ(TotalInvocations(store->get()), 1);
  const auto stats = cache->stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits + stats.coalesced, kThreads - 1);
}

// --- StoreCache negative caching (write path stays visible) ---

TEST(StoreCacheTest, NegativeEntryServesRepeatedMisses) {
  tdstore::Cluster::Options store_options;
  store_options.num_data_servers = 2;
  auto store = tdstore::Cluster::Create(store_options);
  ASSERT_TRUE(store.ok());
  tdstore::Client client(store->get());
  StoreCache cache(&client, /*capacity=*/16);

  EXPECT_TRUE(cache.Get("nope").status().IsNotFound());
  ResetInvocations(store->get());
  EXPECT_TRUE(cache.Get("nope").status().IsNotFound());
  EXPECT_EQ(TotalInvocations(store->get()), 0);  // served from the cache
  EXPECT_EQ(cache.stats().negative_hits, 1);
}

TEST(StoreCacheTest, PutAfterCachedNotFoundIsVisibleOnNextRead) {
  tdstore::Cluster::Options store_options;
  store_options.num_data_servers = 2;
  auto store = tdstore::Cluster::Create(store_options);
  ASSERT_TRUE(store.ok());
  tdstore::Client client(store->get());
  StoreCache cache(&client, /*capacity=*/16);

  EXPECT_TRUE(cache.Get("k").status().IsNotFound());  // negative entry
  ASSERT_TRUE(cache.Put("k", "fresh").ok());          // write-through
  auto v = cache.Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "fresh");
  // And the store really has it (write-through, not cache-only).
  auto stored = client.Get("k");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(*stored, "fresh");
}

TEST(StoreCacheTest, AddDoubleAfterCachedNotFoundSkipsTheReadAndWrites) {
  tdstore::Cluster::Options store_options;
  store_options.num_data_servers = 2;
  auto store = tdstore::Cluster::Create(store_options);
  ASSERT_TRUE(store.ok());
  tdstore::Client client(store->get());
  StoreCache cache(&client, /*capacity=*/16);

  EXPECT_TRUE(cache.Get("ctr").status().IsNotFound());
  ResetInvocations(store->get());
  auto sum = cache.AddDouble("ctr", 2.5);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, 2.5);
  EXPECT_EQ(TotalInvocations(store->get()), 1);  // the Put only, no read
  EXPECT_GE(cache.stats().negative_hits, 1);
  auto stored = client.GetDouble("ctr", -1.0);
  ASSERT_TRUE(stored.ok());
  EXPECT_DOUBLE_EQ(*stored, 2.5);
  // The next read is a positive hit now.
  auto v = cache.Get("ctr");
  ASSERT_TRUE(v.ok());
}

TEST(StoreCacheTest, AddDoubleBatchAfterCachedNotFoundStartsFromZero) {
  tdstore::Cluster::Options store_options;
  store_options.num_data_servers = 2;
  auto store = tdstore::Cluster::Create(store_options);
  ASSERT_TRUE(store.ok());
  tdstore::Client client(store->get());
  StoreCache cache(&client, /*capacity=*/16);
  tdstore::BatchWriter writer(&client, {});

  EXPECT_TRUE(cache.Get("w").status().IsNotFound());
  std::vector<std::pair<std::string, Status>> errors;
  cache.AddDoubleBatch({{"w", 4.0}}, &writer,
                       [&](const std::string& key, const Status& s) {
                         errors.emplace_back(key, s);
                       });
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_TRUE(errors.empty());
  auto stored = client.GetDouble("w", -1.0);
  ASSERT_TRUE(stored.ok());
  EXPECT_DOUBLE_EQ(*stored, 4.0);
  auto cached = cache.Get("w");  // negative entry was replaced
  ASSERT_TRUE(cached.ok());
}

// --- satellite 1: the deregistered-item N+1 on RecommendCb ---

TEST(StoreQueryTest, DeadItemInManyTagIndexesCostsOneReadUnbatched) {
  tdstore::Cluster::Options store_options;
  store_options.num_data_servers = 2;
  store_options.num_instances = 8;
  auto store = tdstore::Cluster::Create(store_options);
  ASSERT_TRUE(store.ok());
  tdstore::Client seed(store->get());

  AppOptions unbatched_options;
  unbatched_options.app = "cb";
  unbatched_options.enable_query_batching = false;
  AppContext unbatched(store->get(), unbatched_options);

  // User 7's profile spans K tags; every tag's inverted index holds only
  // item 99, whose it:99 tag vector was never written (deregistered).
  constexpr int kTags = 5;
  constexpr UserId kUser = 7;
  constexpr ItemId kDead = 99;
  const EventTime now = Seconds(500);
  topo::ContentProfileBlob profile;
  for (int t = 1; t <= kTags; ++t) profile.weights.emplace_back(t, 1.0);
  profile.last_update = now;
  ASSERT_TRUE(seed.Put(unbatched.keys.ContentProfile(kUser),
                       topo::EncodeContentProfile(profile))
                  .ok());
  for (int t = 1; t <= kTags; ++t) {
    ASSERT_TRUE(seed.Put(unbatched.keys.TagIndex(t),
                         topo::EncodeItemList({kDead}))
                    .ok());
  }

  StoreQuery query(&unbatched);
  ResetInvocations(store->get());
  auto recs = query.RecommendCb(kUser, 10, now);
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs->empty());
  // 1 profile + 1 history (NotFound) + kTags tag indexes + exactly ONE
  // it:99 probe. Before the miss memo this was 2 + kTags + kTags.
  EXPECT_EQ(TotalInvocations(store->get()), kTags + 3);

  // The batched tier collapses the whole query to a handful of grouped
  // reads regardless of how many indexes the dead item haunts.
  AppOptions batched_options = unbatched_options;
  batched_options.enable_query_batching = true;
  AppContext batched(store->get(), batched_options);
  StoreQuery batched_query(&batched);
  ResetInvocations(store->get());
  auto batched_recs = batched_query.RecommendCb(kUser, 10, now);
  ASSERT_TRUE(batched_recs.ok());
  EXPECT_TRUE(batched_recs->empty());
  // Four grouped stages (profile, history, tag indexes, item tags); only
  // the tag-index stage can span both hosts. Independent of kTags.
  EXPECT_LE(TotalInvocations(store->get()), 5);
}

// --- satellite 2: per-candidate degradation under per-key store errors ---

TEST(StoreQueryTest, BatchedRecommendCfDegradesPerCandidateOnKeyErrors) {
  tdstore::Cluster::Options store_options;
  store_options.num_data_servers = 2;
  // Not a power of two: with 8 instances over 2 servers the host is the
  // FNV hash's lowest bit, which is linear in the key bytes — sim:<q> and
  // ic:<q> would land on opposite servers for EVERY q, making the layout
  // below unsatisfiable. 7 instances mix all hash bits into the host.
  store_options.num_instances = 7;
  auto store = tdstore::Cluster::Create(store_options);
  ASSERT_TRUE(store.ok());
  tdstore::Cluster* cluster = store->get();
  tdstore::Client seed(cluster);

  AppOptions options;
  options.app = "deg";
  options.window_sessions = 0;
  options.enable_query_batching = false;
  AppContext app(cluster, options);

  // Find a layout where one server's outage hits only candidate p2's
  // counters: user history, sim:q, and everything p1 needs live elsewhere.
  constexpr UserId kUser = 1;
  const std::string hist_key = app.keys.UserHistory(kUser);
  ItemId q = 0, p1 = 0, p2 = 0;
  int target = -1;
  for (int t = 0; t < cluster->num_data_servers() && p2 == 0; ++t) {
    if (ServerOf(cluster, hist_key) == t) continue;
    for (ItemId cq = 2; cq <= 80 && p2 == 0; ++cq) {
      if (ServerOf(cluster, app.keys.SimilarItems(cq)) == t) continue;
      if (ServerOf(cluster, app.keys.ItemCount(0, cq)) == t) continue;
      for (ItemId c1 = cq + 1; c1 <= 90 && p2 == 0; ++c1) {
        if (ServerOf(cluster, app.keys.ItemCount(0, c1)) == t) continue;
        const ItemId lo1 = std::min(cq, c1), hi1 = std::max(cq, c1);
        if (ServerOf(cluster, app.keys.PairCount(0, lo1, hi1)) == t) continue;
        for (ItemId c2 = c1 + 1; c2 <= 100; ++c2) {
          if (ServerOf(cluster, app.keys.ItemCount(0, c2)) != t) continue;
          q = cq;
          p1 = c1;
          p2 = c2;
          target = t;
          break;
        }
      }
    }
  }
  ASSERT_NE(p2, 0) << "no suitable key layout found";

  const EventTime now = Seconds(100);
  core::UserHistory history;
  history.Restore(q, 3.0, now);
  ASSERT_TRUE(seed.Put(hist_key, topo::EncodeUserHistory(history)).ok());
  ASSERT_TRUE(seed.Put(app.keys.SimilarItems(q),
                       topo::EncodeScoredList({{p1, 0.9}, {p2, 0.8}}))
                  .ok());
  ASSERT_TRUE(seed.PutDouble(app.keys.ItemCount(0, q), 5.0).ok());
  ASSERT_TRUE(seed.PutDouble(app.keys.ItemCount(0, p1), 4.0).ok());
  ASSERT_TRUE(seed.PutDouble(app.keys.ItemCount(0, p2), 4.0).ok());
  ASSERT_TRUE(
      seed.PutDouble(app.keys.PairCount(0, std::min(q, p1), std::max(q, p1)),
                     2.0)
          .ok());
  ASSERT_TRUE(
      seed.PutDouble(app.keys.PairCount(0, std::min(q, p2), std::max(q, p2)),
                     2.0)
          .ok());

  AppOptions batched_options = options;
  batched_options.enable_query_batching = true;
  AppContext batched(cluster, batched_options);

  // Healthy store: both paths agree and see both candidates.
  StoreQuery unbatched_query(&app);
  auto healthy = unbatched_query.RecommendCf(kUser, 10, now);
  ASSERT_TRUE(healthy.ok());
  ASSERT_EQ(healthy->size(), 2u);
  {
    StoreQuery batched_query(&batched);
    auto batched_healthy = batched_query.RecommendCf(kUser, 10, now);
    ASSERT_TRUE(batched_healthy.ok());
    ASSERT_EQ(batched_healthy->size(), 2u);
    for (size_t i = 0; i < healthy->size(); ++i) {
      EXPECT_EQ((*healthy)[i].item, (*batched_healthy)[i].item);
      EXPECT_EQ((*healthy)[i].score, (*batched_healthy)[i].score);
    }
  }

  // Down server: the unbatched path aborts the whole recommendation on p2's
  // count read; the batched path drops only p2.
  cluster->data_server(target)->SetDown(true);
  auto aborted = unbatched_query.RecommendCf(kUser, 10, now);
  EXPECT_FALSE(aborted.ok());

  StoreQuery degraded_query(&batched);  // fresh cache: no healthy leftovers
  auto degraded = degraded_query.RecommendCf(kUser, 10, now);
  ASSERT_TRUE(degraded.ok());
  ASSERT_EQ(degraded->size(), 1u);
  EXPECT_EQ((*degraded)[0].item, p1);
  EXPECT_EQ((*degraded)[0].score, (*healthy)[0].item == p1
                                      ? (*healthy)[0].score
                                      : (*healthy)[1].score);
  cluster->data_server(target)->SetDown(false);
}

// --- parity: batched and unbatched engines agree bit-for-bit ---

std::vector<UserAction> SeededStream(uint64_t seed, int n) {
  Rng rng(seed);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase,
                               ActionType::kImpression};
  std::vector<UserAction> actions;
  actions.reserve(n);
  for (int i = 0; i < n; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(20));
    a.item = static_cast<ItemId>(1 + rng.Uniform(15));
    a.action = kTypes[rng.Uniform(5)];
    a.timestamp = Seconds(i * 3);
    if (rng.Bernoulli(0.7)) {
      a.demographics.gender = rng.Bernoulli(0.5) ? Demographics::kMale
                                                 : Demographics::kFemale;
      a.demographics.age_band = static_cast<uint8_t>(rng.UniformInt(1, 4));
    }
    actions.push_back(a);
  }
  return actions;
}

engine::TencentRec::Options ParityOptions(const std::string& app,
                                          bool batching) {
  engine::TencentRec::Options options;
  options.app.app = app;
  options.app.parallelism = 2;
  options.app.linked_time = Days(30);
  options.app.algorithms.ctr = true;
  options.app.algorithms.content_based = true;
  options.app.session_length = Seconds(300);
  options.app.window_sessions = 4;
  options.app.combiner_interval = 16;
  options.app.enable_query_batching = batching;
  options.store.num_data_servers = 2;
  options.store.num_instances = 8;
  return options;
}

void ExpectSameRecommendations(const core::Recommendations& a,
                               const core::Recommendations& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].score, b[i].score);  // bit-identical, not just close
  }
}

TEST(QueryParityTest, BatchedAndUnbatchedQueriesAreBitIdentical) {
  const auto actions = SeededStream(0x5eed, 600);
  const EventTime now = actions.back().timestamp + Seconds(5);

  // One engine, one store: the batched engine query and a hand-built
  // unbatched StoreQuery read the SAME state, so any difference is the
  // read path's fault, not topology-scheduling noise.
  auto batched = engine::TencentRec::Create(ParityOptions("qp", true));
  ASSERT_TRUE(batched.ok());
  for (ItemId item = 1; item <= 15; ++item) {
    core::TagVector tags = {
        {static_cast<core::TagId>(1 + item % 4), 1.0},
        {static_cast<core::TagId>(1 + (item * 7) % 4), 0.5}};
    ASSERT_TRUE((*batched)->RegisterItem(item, tags, Seconds(0)).ok());
  }
  ASSERT_TRUE((*batched)->ProcessBatch(actions).ok());

  AppContext unbatched_ctx((*batched)->store(),
                           ParityOptions("qp", false).app);
  StoreQuery uq(&unbatched_ctx);
  auto& bq = (*batched)->query();
  for (UserId user = 1; user <= 20; ++user) {
    auto b_cf = bq.RecommendCf(user, 10, now);
    auto u_cf = uq.RecommendCf(user, 10, now);
    ASSERT_TRUE(b_cf.ok());
    ASSERT_TRUE(u_cf.ok());
    ExpectSameRecommendations(*b_cf, *u_cf);

    auto b_cb = bq.RecommendCb(user, 10, now);
    auto u_cb = uq.RecommendCb(user, 10, now);
    ASSERT_TRUE(b_cb.ok());
    ASSERT_TRUE(u_cb.ok());
    ExpectSameRecommendations(*b_cb, *u_cb);

    Demographics d;
    d.gender = (user % 2 == 0) ? Demographics::kMale : Demographics::kFemale;
    d.age_band = static_cast<uint8_t>(1 + user % 4);
    auto b_full = bq.Recommend(user, d, 10, now);
    auto u_full = uq.Recommend(user, d, 10, now);
    ASSERT_TRUE(b_full.ok());
    ASSERT_TRUE(u_full.ok());
    ExpectSameRecommendations(*b_full, *u_full);
  }
  for (ItemId item = 1; item <= 15; ++item) {
    auto b_ar = bq.RecommendAr(item, 10, now);
    auto u_ar = uq.RecommendAr(item, 10, now);
    ASSERT_TRUE(b_ar.ok());
    ASSERT_TRUE(u_ar.ok());
    ExpectSameRecommendations(*b_ar, *u_ar);

    Demographics d;
    d.gender = Demographics::kMale;
    auto b_ctr = bq.PredictCtr(item, d, now);
    auto u_ctr = uq.PredictCtr(item, d, now);
    ASSERT_TRUE(b_ctr.ok());
    ASSERT_TRUE(u_ctr.ok());
    EXPECT_EQ(*b_ctr, *u_ctr);

    for (ItemId other = item + 1; other <= 15; ++other) {
      auto b_sim = bq.SimilarityFromCounts(item, other, now);
      auto u_sim = uq.SimilarityFromCounts(item, other, now);
      ASSERT_TRUE(b_sim.ok());
      ASSERT_TRUE(u_sim.ok());
      EXPECT_EQ(*b_sim, *u_sim);
    }
  }
}

// --- satellite 3 at the engine level: RegisterItem invalidates the cache ---

TEST(EngineQueryCacheTest, RegisterItemInvalidatesCachedNotFound) {
  auto engine = engine::TencentRec::Create(ParityOptions("inval", true));
  ASSERT_TRUE(engine.ok());
  auto cache = (*engine)->query_cache();
  ASSERT_NE(cache, nullptr);

  tdstore::Client client((*engine)->store());
  const std::string key = (*engine)->app().keys.ItemTags(123);
  auto fetch = [&client](const std::vector<std::string>& keys,
                         std::vector<Result<std::string>>* out) {
    return client.MultiGetBatch(keys, out);
  };

  // The item isn't registered yet: a query path caches the NotFound.
  EXPECT_TRUE(cache->Get(key, fetch).status().IsNotFound());

  // Registration writes it:123 out of band and must evict that negative
  // entry; a TTL-fresh read straight after sees the tags.
  ASSERT_TRUE((*engine)->RegisterItem(123, {{1, 1.0}}, Seconds(0)).ok());
  auto v = cache->Get(key, fetch);
  ASSERT_TRUE(v.ok());
  auto tags = topo::DecodeTagVector(*v);
  ASSERT_TRUE(tags.ok());
  ASSERT_EQ(tags->size(), 1u);
  EXPECT_EQ((*tags)[0].first, 1u);
}

}  // namespace
}  // namespace tencentrec
