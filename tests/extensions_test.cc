#include <gtest/gtest.h>

#include "common/random.h"
#include "core/itemcf/user_cf.h"
#include "engine/monitor.h"
#include "engine/offline.h"
#include "engine/tencentrec.h"
#include "topo/topology_factory.h"

namespace tencentrec {
namespace {

using core::ActionType;
using core::Demographics;
using core::ItemId;
using core::UserAction;
using core::UserId;

UserAction Act(UserId user, ItemId item, ActionType type, EventTime ts) {
  UserAction a;
  a.user = user;
  a.item = item;
  a.action = type;
  a.timestamp = ts;
  return a;
}

// --- user-based CF ------------------------------------------------------------

TEST(UserBasedCfTest, SimilarUsersShareItems) {
  core::UserBasedCf cf;
  // Users 1 and 2 rate identically; user 3 is disjoint.
  cf.SetRating(1, 10, 2.0);
  cf.SetRating(1, 20, 2.0);
  cf.SetRating(2, 10, 2.0);
  cf.SetRating(2, 20, 2.0);
  cf.SetRating(3, 30, 2.0);
  cf.ComputeSimilarities();
  EXPECT_NEAR(cf.UserSimilarity(1, 2), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(cf.UserSimilarity(1, 3), 0.0);
  EXPECT_DOUBLE_EQ(cf.UserSimilarity(2, 1), cf.UserSimilarity(1, 2));
}

TEST(UserBasedCfTest, RecommendsNeighborItems) {
  core::UserBasedCf cf;
  // User 9 is like users 1..3, who all also rated item 99.
  for (UserId u = 1; u <= 3; ++u) {
    cf.SetRating(u, 10, 2.0);
    cf.SetRating(u, 20, 2.0);
    cf.SetRating(u, 99, 3.0);
  }
  cf.SetRating(9, 10, 2.0);
  cf.SetRating(9, 20, 2.0);
  cf.ComputeSimilarities();
  auto recs = cf.RecommendForUser(9, 5);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 99);
  for (const auto& r : recs) {
    EXPECT_NE(r.item, 10);  // already rated
    EXPECT_NE(r.item, 20);
  }
}

TEST(UserBasedCfTest, UnknownUserGetsNothing) {
  core::UserBasedCf cf;
  cf.SetRating(1, 10, 1.0);
  cf.ComputeSimilarities();
  EXPECT_TRUE(cf.RecommendForUser(777, 5).empty());
}

TEST(UserBasedCfTest, ShrinkageDampsSingleItemOverlap) {
  core::UserBasedCf plain(0.0);
  core::UserBasedCf shrunk(5.0);
  for (auto* cf : {&plain, &shrunk}) {
    cf->SetRating(1, 10, 1.0);
    cf->SetRating(2, 10, 1.0);  // single shared item
    cf->ComputeSimilarities();
  }
  EXPECT_GT(plain.UserSimilarity(1, 2), shrunk.UserSimilarity(1, 2));
}

// --- auto-parallelism (§7 future work) -----------------------------------------

TEST(SuggestParallelismTest, ScalesWithRate) {
  // 50 µs/event at 60% target utilization: 1200 events/s fits one worker.
  EXPECT_EQ(topo::SuggestParallelism(1000), 1);
  EXPECT_GT(topo::SuggestParallelism(100000), 1);
  EXPECT_GE(topo::SuggestParallelism(1e9), 64);   // clamped to max
  EXPECT_EQ(topo::SuggestParallelism(1e9), 64);
  EXPECT_EQ(topo::SuggestParallelism(0), 1);      // degenerate input
  EXPECT_EQ(topo::SuggestParallelism(-5), 1);
}

TEST(SuggestParallelismTest, MonotoneInRate) {
  int last = 0;
  for (double rate : {1e3, 1e4, 1e5, 1e6}) {
    int p = topo::SuggestParallelism(rate);
    EXPECT_GE(p, last);
    last = p;
  }
}

TEST(AutoParallelismTest, EngineSizesFromBatchRate) {
  engine::TencentRec::Options options;
  options.app.app = "auto";
  options.app.parallelism = 0;  // enable auto mode
  options.auto_parallelism_event_cost_us = 2000;  // pretend-heavy events
  options.store.num_data_servers = 1;
  options.store.num_instances = 4;
  auto engine = engine::TencentRec::Create(options);
  ASSERT_TRUE(engine.ok());

  // A dense burst: 2000 actions over 2 seconds of event time.
  std::vector<UserAction> actions;
  for (int i = 0; i < 2000; ++i) {
    actions.push_back(Act(1 + i % 50, 1 + i % 30, ActionType::kClick,
                          i * Seconds(2) / 2000));
  }
  ASSERT_TRUE((*engine)->ProcessBatch(actions).ok());
  EXPECT_GT((*engine)->app().options.parallelism, 1);
}

// --- offline computation platform (Fig. 9) --------------------------------------

TEST(OfflineJobTest, ReplaysHistoryIntoBatchModel) {
  engine::TencentRec::Options options;
  options.app.app = "offline";
  options.app.parallelism = 2;
  options.app.linked_time = Days(30);
  options.store.num_data_servers = 1;
  options.store.num_instances = 4;
  auto engine = engine::TencentRec::Create(options);
  ASSERT_TRUE(engine.ok());

  std::vector<UserAction> actions;
  EventTime t = 0;
  for (UserId u = 1; u <= 5; ++u) {
    actions.push_back(Act(u, 101, ActionType::kClick, t += Seconds(1)));
    actions.push_back(Act(u, 102, ActionType::kClick, t += Seconds(1)));
  }
  ASSERT_TRUE((*engine)->PublishActions(actions).ok());
  // The streaming pipeline consumes the topic...
  ASSERT_TRUE((*engine)->ProcessFromAccess().ok());

  // ...and the offline job can still replay the full history afterwards
  // (TDAccess keeps the data; different consumer groups are independent).
  engine::OfflineCfJob::Options job;
  auto model = engine::OfflineCfJob::Run((*engine)->access(), job);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(engine::OfflineCfJob::last_actions_replayed(), 10);
  EXPECT_GT(model->Similarity(101, 102), 0.9);

  // The batch model agrees with the streaming counts on this clean stream.
  auto streaming_sim =
      (*engine)->query().SimilarityFromCounts(101, 102, t + Seconds(10));
  ASSERT_TRUE(streaming_sim.ok());
  EXPECT_NEAR(model->Similarity(101, 102), *streaming_sim, 1e-9);

  // Re-running replays everything again (offsets are never committed).
  auto again = engine::OfflineCfJob::Run((*engine)->access(), job);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(engine::OfflineCfJob::last_actions_replayed(), 10);
}

// --- monitor (Fig. 9) -------------------------------------------------------------

TEST(MonitorTest, SnapshotReflectsRunAndLag) {
  engine::TencentRec::Options options;
  options.app.app = "monitored";
  options.app.parallelism = 2;
  options.store.num_data_servers = 2;
  options.store.num_instances = 4;
  auto engine = engine::TencentRec::Create(options);
  ASSERT_TRUE(engine.ok());

  std::vector<UserAction> actions;
  for (int i = 0; i < 20; ++i) {
    actions.push_back(Act(1 + i % 4, 1 + i % 6, ActionType::kClick,
                          Seconds(i)));
  }
  ASSERT_TRUE((*engine)->PublishActions(actions).ok());

  // Before processing: the full topic is lag.
  auto before = engine::CollectMonitorSnapshot(engine->get());
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->ingestion_lag, 20);

  ASSERT_TRUE((*engine)->ProcessFromAccess().ok());
  auto after = engine::CollectMonitorSnapshot(engine->get());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->ingestion_lag, 0);
  ASSERT_FALSE(after->topology.empty());
  uint64_t executed = 0;
  for (const auto& row : after->topology) executed += row.executed;
  EXPECT_GT(executed, 0u);
  ASSERT_EQ(after->store.size(), 2u);
  int64_t writes = 0;
  for (const auto& row : after->store) writes += row.writes;
  EXPECT_GT(writes, 0);

  const std::string report = engine::FormatMonitorSnapshot(*after);
  EXPECT_NE(report.find("topology"), std::string::npos);
  EXPECT_NE(report.find("tdstore"), std::string::npos);
  EXPECT_NE(report.find("ingestion lag: 0"), std::string::npos);
}

}  // namespace
}  // namespace tencentrec
