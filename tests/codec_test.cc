// Wire-format hardening for topo/blob_codec and topo/action_codec:
// round-trip property tests over randomized values, legacy payload decode,
// truncated-buffer rejection, and random-bytes no-crash fuzzing.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "topo/action_codec.h"
#include "topo/blob_codec.h"

namespace tencentrec::topo {
namespace {

using core::ActionType;
using core::Demographics;
using core::UserAction;

// --- round-trip properties --------------------------------------------------

TEST(BlobCodecProperty, UserHistoryRoundTrip) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    core::UserHistory history;
    const int items = static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < items; ++i) {
      history.Restore(static_cast<core::ItemId>(1 + rng.Uniform(1000)),
                      static_cast<double>(rng.Uniform(30)) / 10.0,
                      Seconds(static_cast<int64_t>(rng.Uniform(100000))));
    }
    const std::string blob = EncodeUserHistory(history);
    auto decoded = DecodeUserHistory(blob);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->size(), history.size());
    for (const auto& [item, state] : history.items()) {
      EXPECT_EQ(decoded->RatingOf(item), state.rating);
    }
  }
}

TEST(BlobCodecProperty, ScoredListRoundTrip) {
  Rng rng(102);
  for (int trial = 0; trial < 50; ++trial) {
    core::Recommendations list;
    const int n = static_cast<int>(rng.Uniform(32));
    for (int i = 0; i < n; ++i) {
      list.push_back({static_cast<core::ItemId>(rng.Uniform(1u << 20)),
                      rng.NextDouble() * 100.0});
    }
    auto decoded = DecodeScoredList(EncodeScoredList(list));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, list);
  }
}

TEST(BlobCodecProperty, TagVectorAndItemListRoundTrip) {
  Rng rng(103);
  for (int trial = 0; trial < 50; ++trial) {
    core::TagVector tags;
    std::vector<core::ItemId> items;
    const int n = static_cast<int>(rng.Uniform(16));
    for (int i = 0; i < n; ++i) {
      tags.emplace_back(static_cast<core::TagId>(rng.Uniform(500)),
                        rng.NextDouble());
      items.push_back(static_cast<core::ItemId>(rng.Uniform(1u << 30)));
    }
    auto dtags = DecodeTagVector(EncodeTagVector(tags));
    ASSERT_TRUE(dtags.ok());
    EXPECT_EQ(*dtags, tags);
    auto ditems = DecodeItemList(EncodeItemList(items));
    ASSERT_TRUE(ditems.ok());
    EXPECT_EQ(*ditems, items);
  }
}

TEST(BlobCodecProperty, ContentProfileAndDoublePairRoundTrip) {
  Rng rng(104);
  for (int trial = 0; trial < 50; ++trial) {
    ContentProfileBlob profile;
    const int n = static_cast<int>(rng.Uniform(12));
    for (int i = 0; i < n; ++i) {
      profile.weights.emplace_back(static_cast<core::TagId>(rng.Uniform(99)),
                                   rng.NextDouble());
    }
    profile.last_update = Seconds(static_cast<int64_t>(rng.Uniform(1u << 20)));
    auto decoded = DecodeContentProfile(EncodeContentProfile(profile));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->weights, profile.weights);
    EXPECT_EQ(decoded->last_update, profile.last_update);

    const double a = rng.NextDouble() * 1e6;
    const double b = rng.NextDouble() * 1e6;
    auto pair = DecodeDoublePair(EncodeDoublePair(a, b));
    ASSERT_TRUE(pair.ok());
    EXPECT_EQ(pair->first, a);
    EXPECT_EQ(pair->second, b);
  }
}

UserAction RandomAction(Rng& rng) {
  UserAction a;
  a.user = static_cast<core::UserId>(rng.Uniform(1u << 30));
  a.item = static_cast<core::ItemId>(rng.Uniform(1u << 30));
  a.action = static_cast<ActionType>(rng.Uniform(core::kNumActionTypes));
  a.timestamp = static_cast<EventTime>(rng.Uniform(1ull << 40));
  a.demographics.gender =
      static_cast<Demographics::Gender>(rng.Uniform(3));
  a.demographics.age_band = static_cast<uint8_t>(rng.Uniform(8));
  a.demographics.region = static_cast<uint16_t>(rng.Uniform(1000));
  a.ingest_micros = rng.Uniform(1ull << 50);
  a.trace_id = rng.Uniform(1ull << 62);
  return a;
}

TEST(ActionCodecProperty, PayloadRoundTripPreservesEveryField) {
  Rng rng(105);
  for (int trial = 0; trial < 200; ++trial) {
    const UserAction a = RandomAction(rng);
    auto decoded = DecodeActionPayload(EncodeActionPayload(a));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->user, a.user);
    EXPECT_EQ(decoded->item, a.item);
    EXPECT_EQ(decoded->action, a.action);
    EXPECT_EQ(decoded->timestamp, a.timestamp);
    EXPECT_EQ(decoded->demographics, a.demographics);
    EXPECT_EQ(decoded->ingest_micros, a.ingest_micros);
    EXPECT_EQ(decoded->trace_id, a.trace_id);
  }
}

TEST(ActionCodecProperty, TupleRoundTripPreservesEveryField) {
  Rng rng(106);
  for (int trial = 0; trial < 200; ++trial) {
    const UserAction a = RandomAction(rng);
    auto decoded = ActionFromTuple(ActionToTuple(a));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->user, a.user);
    EXPECT_EQ(decoded->demographics, a.demographics);
    EXPECT_EQ(decoded->ingest_micros, a.ingest_micros);
    EXPECT_EQ(decoded->trace_id, a.trace_id);
  }
}

// --- legacy decode ----------------------------------------------------------

TEST(ActionCodecLegacy, AllThreePayloadGenerationsDecode) {
  Rng rng(107);
  const UserAction a = RandomAction(rng);
  const std::string payload = EncodeActionPayload(a);
  ASSERT_EQ(payload.size(), 45u);
  const std::string_view view(payload);

  auto v0 = DecodeActionPayload(view.substr(0, 29));  // pre-ingest build
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(v0->user, a.user);
  EXPECT_EQ(v0->ingest_micros, 0u);
  EXPECT_EQ(v0->trace_id, 0u);

  auto v1 = DecodeActionPayload(view.substr(0, 37));  // pre-trace build
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->ingest_micros, a.ingest_micros);
  EXPECT_EQ(v1->trace_id, 0u);

  auto v2 = DecodeActionPayload(view);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->trace_id, a.trace_id);
}

// --- truncation rejection ---------------------------------------------------

TEST(ActionCodecTruncation, EveryOtherLengthRejected) {
  Rng rng(108);
  const std::string payload = EncodeActionPayload(RandomAction(rng));
  const std::string padded = payload + "xx";
  for (size_t len = 0; len <= padded.size(); ++len) {
    auto decoded =
        DecodeActionPayload(std::string_view(padded).substr(0, len));
    if (len == 29 || len == 37 || len == 45) {
      EXPECT_TRUE(decoded.ok()) << "len=" << len;
    } else {
      EXPECT_FALSE(decoded.ok()) << "len=" << len;
    }
  }
}

TEST(BlobCodecTruncation, TruncatedBlobsRejectedNotMisread) {
  core::UserHistory history;
  history.Restore(7, 1.5, Seconds(10));
  history.Restore(9, 3.0, Seconds(20));
  const std::string hist_blob = EncodeUserHistory(history);
  for (size_t len = 0; len < hist_blob.size(); ++len) {
    EXPECT_FALSE(
        DecodeUserHistory(std::string_view(hist_blob).substr(0, len)).ok())
        << "len=" << len;
  }

  const std::string list_blob =
      EncodeScoredList({{1, 0.5}, {2, 0.25}, {3, 0.125}});
  for (size_t len = 0; len < list_blob.size(); ++len) {
    EXPECT_FALSE(
        DecodeScoredList(std::string_view(list_blob).substr(0, len)).ok())
        << "len=" << len;
  }

  const std::string pair_blob = EncodeDoublePair(1.0, 2.0);
  for (size_t len = 0; len < pair_blob.size(); ++len) {
    EXPECT_FALSE(
        DecodeDoublePair(std::string_view(pair_blob).substr(0, len)).ok());
  }
}

// --- random-bytes fuzzing ---------------------------------------------------

std::string RandomBytes(Rng& rng, size_t max_len) {
  std::string bytes(rng.Uniform(max_len + 1), '\0');
  for (auto& c : bytes) c = static_cast<char>(rng.Uniform(256));
  return bytes;
}

TEST(CodecFuzz, RandomBytesNeverCrashAnyDecoder) {
  // Decoders must treat arbitrary input as data, never as trusted
  // structure: any outcome is fine, crashing or over-reading is not.
  Rng rng(109);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string bytes = RandomBytes(rng, 96);
    (void)DecodeActionPayload(bytes);
    (void)DecodeUserHistory(bytes);
    (void)DecodeScoredList(bytes);
    (void)DecodeTagVector(bytes);
    (void)DecodeItemList(bytes);
    (void)DecodeContentProfile(bytes);
    (void)DecodeDoublePair(bytes);
  }
  // A size-coherent random payload decodes without crashing even though
  // its field values are garbage.
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = RandomBytes(rng, 0);
    bytes.resize(45);
    for (auto& c : bytes) c = static_cast<char>(rng.Uniform(256));
    (void)DecodeActionPayload(bytes);
  }
}

}  // namespace
}  // namespace tencentrec::topo
