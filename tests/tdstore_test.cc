#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <unistd.h>

#include "tdstore/client.h"
#include "tdstore/cluster.h"
#include "tdstore/fdb_engine.h"
#include "tdstore/ldb_engine.h"
#include "tdstore/rdb_engine.h"

namespace tencentrec::tdstore {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("tdstore_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  static int counter_;
  std::filesystem::path path_;
};
int TempDir::counter_ = 0;

// --- engines (parameterized over all three) ---------------------------------

class EngineTest : public ::testing::TestWithParam<EngineType> {
 protected:
  void SetUp() override {
    EngineOptions options;
    options.type = GetParam();
    options.ldb_memtable_limit = 8;  // force runs in LDB
    options.ldb_max_runs = 2;
    if (GetParam() == EngineType::kFdb) {
      options.fdb_path = dir_.path() + "/engine.fdb";
    }
    if (GetParam() == EngineType::kRdb) {
      options.rdb_path = dir_.path() + "/engine.rdb";
    }
    auto engine = CreateEngine(options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).value();
  }

  TempDir dir_;
  std::unique_ptr<Engine> engine_;
};

TEST_P(EngineTest, PutGetDelete) {
  ASSERT_TRUE(engine_->Put("a", "1").ok());
  ASSERT_TRUE(engine_->Put("b", "2").ok());
  auto v = engine_->Get("a");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1");
  EXPECT_TRUE(engine_->Get("missing").status().IsNotFound());
  ASSERT_TRUE(engine_->Delete("a").ok());
  EXPECT_TRUE(engine_->Get("a").status().IsNotFound());
  EXPECT_EQ(engine_->Count(), 1u);
}

TEST_P(EngineTest, OverwriteKeepsLatest) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine_->Put("key", "v" + std::to_string(i)).ok());
  }
  auto v = engine_->Get("key");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v49");
  EXPECT_EQ(engine_->Count(), 1u);
}

TEST_P(EngineTest, ManyKeysSurviveChurn) {
  // Exercises memtable seals + compaction in LDB and garbage in FDB.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(engine_
                      ->Put("k" + std::to_string(i),
                            "r" + std::to_string(round) + "-" +
                                std::to_string(i))
                      .ok());
    }
  }
  for (int i = 0; i < 100; i += 2) {
    ASSERT_TRUE(engine_->Delete("k" + std::to_string(i)).ok());
  }
  EXPECT_EQ(engine_->Count(), 50u);
  for (int i = 1; i < 100; i += 2) {
    auto v = engine_->Get("k" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, "r2-" + std::to_string(i));
  }
}

TEST_P(EngineTest, ScanPrefix) {
  ASSERT_TRUE(engine_->Put("ic:1", "a").ok());
  ASSERT_TRUE(engine_->Put("ic:2", "b").ok());
  ASSERT_TRUE(engine_->Put("pc:1", "c").ok());
  std::map<std::string, std::string> seen;
  ASSERT_TRUE(engine_
                  ->ScanPrefix("ic:",
                               [&](std::string_view k, std::string_view v) {
                                 seen[std::string(k)] = std::string(v);
                                 return true;
                               })
                  .ok());
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen["ic:1"], "a");
  EXPECT_EQ(seen["ic:2"], "b");
}

TEST_P(EngineTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine_->Put("p:" + std::to_string(i), "v").ok());
  }
  int visits = 0;
  ASSERT_TRUE(engine_
                  ->ScanPrefix("p:",
                               [&](std::string_view, std::string_view) {
                                 return ++visits < 3;
                               })
                  .ok());
  EXPECT_EQ(visits, 3);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineTest,
                         ::testing::Values(EngineType::kMdb, EngineType::kLdb,
                                           EngineType::kFdb, EngineType::kRdb),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineType::kMdb:
                               return "Mdb";
                             case EngineType::kLdb:
                               return "Ldb";
                             case EngineType::kFdb:
                               return "Fdb";
                             default:
                               return "Rdb";
                           }
                         });

// --- LDB specifics ----------------------------------------------------------

TEST(LdbEngineTest, SealsAndCompactsRuns) {
  EngineOptions options;
  options.ldb_memtable_limit = 4;
  options.ldb_max_runs = 2;
  LdbEngine engine(options);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(engine.Put("k" + std::to_string(i), "v").ok());
  }
  EXPECT_LE(engine.NumRuns(), 3u);  // compaction keeps runs bounded
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(engine.Get("k" + std::to_string(i)).ok()) << i;
  }
}

TEST(LdbEngineTest, TombstoneShadowsOlderRuns) {
  EngineOptions options;
  options.ldb_memtable_limit = 4;
  options.ldb_max_runs = 10;  // avoid compaction to test shadowing
  LdbEngine engine(options);
  ASSERT_TRUE(engine.Put("x", "old").ok());
  ASSERT_TRUE(engine.Flush().ok());  // seal run with x=old
  ASSERT_TRUE(engine.Delete("x").ok());
  ASSERT_TRUE(engine.Flush().ok());  // seal run with tombstone
  EXPECT_TRUE(engine.Get("x").status().IsNotFound());
  ASSERT_TRUE(engine.Put("x", "new").ok());
  auto v = engine.Get("x");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "new");
}

// --- FDB specifics ----------------------------------------------------------

TEST(FdbEngineTest, SurvivesReopen) {
  TempDir dir;
  EngineOptions options;
  options.type = EngineType::kFdb;
  options.fdb_path = dir.path() + "/db.fdb";
  {
    auto engine = FdbEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Put("persist", "me").ok());
    ASSERT_TRUE((*engine)->Put("drop", "me").ok());
    ASSERT_TRUE((*engine)->Delete("drop").ok());
  }
  auto engine = FdbEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  auto v = (*engine)->Get("persist");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "me");
  EXPECT_TRUE((*engine)->Get("drop").status().IsNotFound());
}

TEST(FdbEngineTest, CompactionReclaimsGarbage) {
  TempDir dir;
  EngineOptions options;
  options.type = EngineType::kFdb;
  options.fdb_path = dir.path() + "/db.fdb";
  options.fdb_compact_garbage_ratio = 0.4;
  auto engine = FdbEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*engine)->Put("hot", "value-" + std::to_string(i)).ok());
  }
  // Overwrites created garbage; compaction must have fired and kept the
  // live value.
  EXPECT_LT((*engine)->DeadBytes(),
            static_cast<size_t>(200 * 20));  // far below total written
  auto v = (*engine)->Get("hot");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "value-199");
}

// --- RDB specifics ----------------------------------------------------------

TEST(RdbEngineTest, SnapshotSurvivesReopen) {
  TempDir dir;
  EngineOptions options;
  options.type = EngineType::kRdb;
  options.rdb_path = dir.path() + "/db.rdb";
  {
    auto engine = RdbEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Put("snapshotted", "yes").ok());
    ASSERT_TRUE((*engine)->Flush().ok());  // snapshot point
    ASSERT_TRUE((*engine)->Put("after-snapshot", "lost").ok());
    EXPECT_EQ((*engine)->snapshots_written(), 1);
  }
  auto engine = RdbEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  // Redis RDB semantics: the snapshot survives, later mutations are lost.
  auto v = (*engine)->Get("snapshotted");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "yes");
  EXPECT_TRUE((*engine)->Get("after-snapshot").status().IsNotFound());
}

TEST(RdbEngineTest, IntervalSnapshots) {
  TempDir dir;
  EngineOptions options;
  options.type = EngineType::kRdb;
  options.rdb_path = dir.path() + "/db.rdb";
  options.rdb_snapshot_interval_ops = 10;
  auto engine = RdbEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 35; ++i) {
    ASSERT_TRUE((*engine)->Put("k" + std::to_string(i), "v").ok());
  }
  EXPECT_EQ((*engine)->snapshots_written(), 3);  // every 10 mutations
  // Reopen recovers at least the last snapshot's 30 keys.
  engine->reset();
  auto reopened = RdbEngine::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_GE((*reopened)->Count(), 30u);
}

TEST(RdbEngineTest, CorruptSnapshotRejected) {
  TempDir dir;
  EngineOptions options;
  options.type = EngineType::kRdb;
  options.rdb_path = dir.path() + "/db.rdb";
  {
    auto engine = RdbEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Put("a", "b").ok());
    ASSERT_TRUE((*engine)->Flush().ok());
  }
  {
    std::FILE* f = std::fopen(options.rdb_path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_END);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
  }
  EXPECT_TRUE(RdbEngine::Open(options).status().IsCorruption());
}

TEST(RdbEngineTest, RequiresPath) {
  EngineOptions options;
  options.type = EngineType::kRdb;
  EXPECT_FALSE(CreateEngine(options).ok());
}

TEST(FdbEngineTest, RequiresPath) {
  EngineOptions options;
  options.type = EngineType::kFdb;
  EXPECT_FALSE(CreateEngine(options).ok());
}

// --- cluster / client -------------------------------------------------------

Cluster::Options SmallCluster() {
  Cluster::Options options;
  options.num_data_servers = 3;
  options.num_instances = 8;
  return options;
}

TEST(ClusterTest, RoutedPutGet) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.Put("key" + std::to_string(i),
                           "value" + std::to_string(i))
                    .ok());
  }
  for (int i = 0; i < 100; ++i) {
    auto v = client.Get("key" + std::to_string(i));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "value" + std::to_string(i));
  }
  // Keys actually spread across servers.
  for (int s = 0; s < 3; ++s) {
    EXPECT_GT((*cluster)->data_server(s)->TotalKeys(), 0u);
  }
}

TEST(ClusterTest, TypedCounters) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  auto v1 = client.IncrDouble("counter", 1.5);
  ASSERT_TRUE(v1.ok());
  EXPECT_DOUBLE_EQ(*v1, 1.5);
  auto v2 = client.IncrDouble("counter", 2.5);
  ASSERT_TRUE(v2.ok());
  EXPECT_DOUBLE_EQ(*v2, 4.0);
  auto read = client.GetDouble("counter");
  ASSERT_TRUE(read.ok());
  EXPECT_DOUBLE_EQ(*read, 4.0);
  EXPECT_DOUBLE_EQ(client.GetDouble("absent", 7.0).value(), 7.0);

  auto i1 = client.IncrInt64("icounter", 10);
  ASSERT_TRUE(i1.ok());
  EXPECT_EQ(*i1, 10);
  EXPECT_EQ(client.IncrInt64("icounter", -3).value(), 7);
}

TEST(ClusterTest, MultiGet) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  ASSERT_TRUE(client.Put("a", "1").ok());
  ASSERT_TRUE(client.Put("c", "3").ok());
  auto values = client.MultiGet({"a", "b", "c"});
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), 3u);
  EXPECT_EQ((*values)[0].value(), "1");
  EXPECT_FALSE((*values)[1].has_value());
  EXPECT_EQ((*values)[2].value(), "3");
}

TEST(ClusterTest, ScanPrefixAcrossInstances) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.Put("scan:" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(client.Put("other:1", "v").ok());
  int found = 0;
  ASSERT_TRUE(client
                  .ScanPrefix("scan:",
                              [&](std::string_view, std::string_view) {
                                ++found;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(found, 50);
}

TEST(ClusterTest, FailoverServesFromSlave) {
  auto cluster = Cluster::Create(SmallCluster());  // sync replication
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(client.Put("k" + std::to_string(i), std::to_string(i)).ok());
  }
  ASSERT_TRUE((*cluster)->FailDataServer(0).ok());
  // Every key still readable: instances hosted on server 0 fail over to
  // their slaves; the stale client refreshes its route on Unavailable.
  for (int i = 0; i < 60; ++i) {
    auto v = client.Get("k" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << "key " << i << ": " << v.status().ToString();
    EXPECT_EQ(*v, std::to_string(i));
  }
  EXPECT_GT(client.route_refreshes(), 1);
  // Writes continue against the new hosts.
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(client.Put("k" + std::to_string(i), "post-failover").ok());
  }
}

TEST(ClusterTest, RecoveryReseedsSlaves) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(client.Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE((*cluster)->FailDataServer(1).ok());
  for (int i = 40; i < 80; ++i) {
    ASSERT_TRUE(client.Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE((*cluster)->RecoverDataServer(1).ok());
  // After recovery every instance has a slave again; failing another
  // server must still leave all data reachable.
  ASSERT_TRUE((*cluster)->FailDataServer(2).ok());
  for (int i = 0; i < 80; ++i) {
    auto v = client.Get("k" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << "key " << i << ": " << v.status().ToString();
  }
}

TEST(ClusterTest, AsyncReplicationDrainsOnFlush) {
  Cluster::Options options = SmallCluster();
  options.sync_replication = false;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client.Put("k" + std::to_string(i), "v").ok());
  }
  size_t pending = 0;
  for (int s = 0; s < 3; ++s) {
    pending += (*cluster)->data_server(s)->PendingReplication();
  }
  EXPECT_GT(pending, 0u);  // "slave updates when idle"
  ASSERT_TRUE((*cluster)->FlushReplication().ok());
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ((*cluster)->data_server(s)->PendingReplication(), 0u);
  }
  // Now a failover loses nothing.
  ASSERT_TRUE((*cluster)->FailDataServer(0).ok());
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(client.Get("k" + std::to_string(i)).ok()) << i;
  }
}

TEST(ClusterTest, ConfigServerFailover) {
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  const uint64_t version = (*cluster)->config().Version();
  ASSERT_TRUE((*cluster)->FailActiveConfigServer().ok());
  // Backup has the same table.
  EXPECT_EQ((*cluster)->config().Version(), version);
  auto table = (*cluster)->config().GetRouteTable();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->placements.size(), 8u);
  EXPECT_FALSE((*cluster)->FailActiveConfigServer().ok());
  // Failover of data servers still works through the backup config.
  Client client(cluster->get());
  ASSERT_TRUE(client.Put("x", "y").ok());
  ASSERT_TRUE((*cluster)->FailDataServer(0).ok());
  EXPECT_TRUE(client.Get("x").ok());
}

TEST(ClusterTest, SingleServerNoReplication) {
  Cluster::Options options;
  options.num_data_servers = 1;
  options.num_instances = 4;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Client client(cluster->get());
  ASSERT_TRUE(client.Put("a", "b").ok());
  EXPECT_TRUE(client.Get("a").ok());
  // Failing the only server is fatal for its instances.
  EXPECT_FALSE((*cluster)->FailDataServer(0).ok());
}

TEST(ClusterTest, StaleClientCannotWriteToDemotedReplica) {
  // Regression (found by the shadow-map property test): after a failover
  // and recovery, a client holding a pre-failover route table must not be
  // able to write to the recovered server, which is now only a slave —
  // "only the host data server provides service for a certain data
  // instance" (§3.3).
  auto cluster = Cluster::Create(SmallCluster());
  ASSERT_TRUE(cluster.ok());
  Client fresh(cluster->get());
  Client stale(cluster->get());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(fresh.Put("k" + std::to_string(i), "v0").ok());
  }
  // Prime the stale client's route table (pre-failover placement).
  ASSERT_TRUE(stale.Get("k0").ok());

  ASSERT_TRUE((*cluster)->FailDataServer(0).ok());
  ASSERT_TRUE((*cluster)->RecoverDataServer(0).ok());

  // The stale client writes every key; each write must land on the CURRENT
  // host (its first attempt may hit server 0, now a slave, which must
  // refuse so the client refreshes its route).
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(stale.Put("k" + std::to_string(i), "v1").ok()) << i;
  }
  for (int i = 0; i < 30; ++i) {
    auto v = fresh.Get("k" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, "v1") << "lost write on key " << i;
  }
}

TEST(ClusterTest, InvalidOptionsRejected) {
  Cluster::Options options;
  options.num_data_servers = 0;
  EXPECT_FALSE(Cluster::Create(options).ok());
  options.num_data_servers = 1;
  options.num_instances = 0;
  EXPECT_FALSE(Cluster::Create(options).ok());
}

}  // namespace
}  // namespace tencentrec::tdstore
