#include <gtest/gtest.h>

#include "core/rating.h"

namespace tencentrec::core {
namespace {

UserAction Act(UserId user, ItemId item, ActionType type, EventTime ts) {
  UserAction a;
  a.user = user;
  a.item = item;
  a.action = type;
  a.timestamp = ts;
  return a;
}

TEST(ActionWeightsTest, DefaultsOrdered) {
  ActionWeights w;
  EXPECT_EQ(w.Weight(ActionType::kImpression), 0.0);
  EXPECT_LT(w.Weight(ActionType::kBrowse), w.Weight(ActionType::kClick));
  EXPECT_LT(w.Weight(ActionType::kClick), w.Weight(ActionType::kRead));
  EXPECT_LT(w.Weight(ActionType::kRead), w.Weight(ActionType::kPurchase));
  EXPECT_DOUBLE_EQ(w.MaxWeight(), w.Weight(ActionType::kPurchase));
}

TEST(ActionWeightsTest, Overridable) {
  ActionWeights w;
  w.SetWeight(ActionType::kBrowse, 0.5);
  EXPECT_DOUBLE_EQ(w.Weight(ActionType::kBrowse), 0.5);
}

TEST(ActionTypeTest, Names) {
  EXPECT_STREQ(ActionTypeName(ActionType::kBrowse), "browse");
  EXPECT_STREQ(ActionTypeName(ActionType::kPurchase), "purchase");
}

TEST(DemographicsTest, GroupMapping) {
  Demographics d;
  EXPECT_EQ(DemographicGroup(d), 0u);  // unknown -> global group
  d.gender = Demographics::kMale;
  EXPECT_EQ(DemographicGroup(d), 0u);  // age still unknown
  d.age_band = 3;
  EXPECT_EQ(DemographicGroup(d), 103u);
  d.gender = Demographics::kFemale;
  EXPECT_EQ(DemographicGroup(d), 203u);
  // Region does not change the group (used as a CTR dimension instead).
  d.region = 7;
  EXPECT_EQ(DemographicGroup(d), 203u);
}

// --- max-weight rating rule (§4.1.2) ----------------------------------------

TEST(UserHistoryTest, RatingIsMaxActionWeight) {
  UserHistory h;
  ActionWeights w;
  auto u1 = h.Apply(Act(1, 10, ActionType::kBrowse, Seconds(1)), w, Hours(6));
  EXPECT_DOUBLE_EQ(u1.new_rating, w.Weight(ActionType::kBrowse));
  EXPECT_DOUBLE_EQ(u1.rating_delta, w.Weight(ActionType::kBrowse));

  // Purchase outranks browse: rating jumps to the purchase weight.
  auto u2 =
      h.Apply(Act(1, 10, ActionType::kPurchase, Seconds(2)), w, Hours(6));
  EXPECT_DOUBLE_EQ(u2.new_rating, w.Weight(ActionType::kPurchase));
  EXPECT_DOUBLE_EQ(u2.rating_delta, w.Weight(ActionType::kPurchase) -
                                        w.Weight(ActionType::kBrowse));

  // A later weaker action changes nothing (max rule bounds the noise of
  // messy implicit feedback).
  auto u3 = h.Apply(Act(1, 10, ActionType::kClick, Seconds(3)), w, Hours(6));
  EXPECT_DOUBLE_EQ(u3.rating_delta, 0.0);
  EXPECT_DOUBLE_EQ(h.RatingOf(10), w.Weight(ActionType::kPurchase));
}

TEST(UserHistoryTest, ImpressionCarriesNoRating) {
  UserHistory h;
  ActionWeights w;
  auto u = h.Apply(Act(1, 10, ActionType::kImpression, 0), w, Hours(6));
  EXPECT_DOUBLE_EQ(u.rating_delta, 0.0);
  EXPECT_TRUE(u.pairs.empty());
  EXPECT_TRUE(h.RecentItems(10).empty());  // zero-rated items not "recent"
}

// --- co-rating deltas (Eq. 3) -----------------------------------------------

TEST(UserHistoryTest, CoRatingIsMinOfRatings) {
  UserHistory h;
  ActionWeights w;
  h.Apply(Act(1, 10, ActionType::kPurchase, Seconds(1)), w, Hours(6));
  auto u = h.Apply(Act(1, 20, ActionType::kBrowse, Seconds(2)), w, Hours(6));
  ASSERT_EQ(u.pairs.size(), 1u);
  EXPECT_EQ(u.pairs[0].other, 10);
  // co-rating = min(browse, purchase) = browse weight; delta from 0.
  EXPECT_DOUBLE_EQ(u.pairs[0].co_rating_delta, w.Weight(ActionType::kBrowse));
}

TEST(UserHistoryTest, CoRatingDeltaOnUpgrade) {
  UserHistory h;
  ActionWeights w;
  h.Apply(Act(1, 10, ActionType::kRead, Seconds(1)), w, Hours(6));
  h.Apply(Act(1, 20, ActionType::kBrowse, Seconds(2)), w, Hours(6));
  // Upgrading item 20 to purchase raises co-rating from min(read, browse) =
  // browse to min(read, purchase) = read.
  auto u =
      h.Apply(Act(1, 20, ActionType::kPurchase, Seconds(3)), w, Hours(6));
  ASSERT_EQ(u.pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(
      u.pairs[0].co_rating_delta,
      w.Weight(ActionType::kRead) - w.Weight(ActionType::kBrowse));
}

TEST(UserHistoryTest, NoCoRatingChangeWhenCappedByOther) {
  UserHistory h;
  ActionWeights w;
  h.Apply(Act(1, 10, ActionType::kBrowse, Seconds(1)), w, Hours(6));
  h.Apply(Act(1, 20, ActionType::kRead, Seconds(2)), w, Hours(6));
  // Upgrading 20 further: co-rating already capped by item 10's browse.
  auto u =
      h.Apply(Act(1, 20, ActionType::kPurchase, Seconds(3)), w, Hours(6));
  EXPECT_TRUE(u.pairs.empty());
}

TEST(UserHistoryTest, MultiplePairsFromOneAction) {
  UserHistory h;
  ActionWeights w;
  h.Apply(Act(1, 10, ActionType::kClick, Seconds(1)), w, Hours(6));
  h.Apply(Act(1, 20, ActionType::kClick, Seconds(2)), w, Hours(6));
  h.Apply(Act(1, 30, ActionType::kClick, Seconds(3)), w, Hours(6));
  auto u = h.Apply(Act(1, 40, ActionType::kClick, Seconds(4)), w, Hours(6));
  EXPECT_EQ(u.pairs.size(), 3u);
}

// --- linked time (§4.1.4) ----------------------------------------------------

TEST(UserHistoryTest, LinkedTimeLimitsPairs) {
  UserHistory h;
  ActionWeights w;
  h.Apply(Act(1, 10, ActionType::kClick, Hours(0)), w, Hours(6));
  h.Apply(Act(1, 20, ActionType::kClick, Hours(5)), w, Hours(6));
  // Item 30 at hour 12: item 20 is 7h old (out), item 10 is 12h old (out).
  auto far = h.Apply(Act(1, 30, ActionType::kClick, Hours(12)), w, Hours(6));
  EXPECT_TRUE(far.pairs.empty());
  // Item 40 at hour 13: item 30 is 1h old (in).
  auto near = h.Apply(Act(1, 40, ActionType::kClick, Hours(13)), w, Hours(6));
  ASSERT_EQ(near.pairs.size(), 1u);
  EXPECT_EQ(near.pairs[0].other, 30);
}

TEST(UserHistoryTest, RetouchRefreshesLinkedAnchor) {
  UserHistory h;
  ActionWeights w;
  h.Apply(Act(1, 10, ActionType::kClick, Hours(0)), w, Hours(6));
  // Re-touch item 10 at hour 10 (no rating change, but recency updates).
  h.Apply(Act(1, 10, ActionType::kClick, Hours(10)), w, Hours(6));
  auto u = h.Apply(Act(1, 20, ActionType::kClick, Hours(12)), w, Hours(6));
  ASSERT_EQ(u.pairs.size(), 1u);  // 10 is now only 2h old
}

// --- recent items (§4.3) ------------------------------------------------------

TEST(UserHistoryTest, RecentItemsNewestFirst) {
  UserHistory h;
  ActionWeights w;
  for (int i = 1; i <= 5; ++i) {
    h.Apply(Act(1, i, ActionType::kClick, Minutes(i)), w, Hours(6));
  }
  auto recent = h.RecentItems(3);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0], 5);
  EXPECT_EQ(recent[1], 4);
  EXPECT_EQ(recent[2], 3);
}

TEST(UserHistoryTest, EvictOlderThan) {
  UserHistory h;
  ActionWeights w;
  h.Apply(Act(1, 1, ActionType::kClick, Hours(0)), w, Hours(6));
  h.Apply(Act(1, 2, ActionType::kClick, Hours(10)), w, Hours(6));
  h.EvictOlderThan(Hours(5));
  EXPECT_EQ(h.size(), 1u);
  EXPECT_DOUBLE_EQ(h.RatingOf(1), 0.0);
  EXPECT_GT(h.RatingOf(2), 0.0);
}

TEST(UserHistoryTest, RestoreRoundTrip) {
  UserHistory h;
  h.Restore(7, 2.5, Hours(3));
  EXPECT_DOUBLE_EQ(h.RatingOf(7), 2.5);
  auto recent = h.RecentItems(5);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0], 7);
}

}  // namespace
}  // namespace tencentrec::core
