// Property-based tests: randomized inputs checked against naive reference
// implementations or invariants, parameterized over seeds.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <unistd.h>

#include "common/random.h"
#include "common/topk.h"
#include "core/itemcf/window_counts.h"
#include "core/rating.h"
#include "tdaccess/segment_log.h"
#include "tdstore/client.h"
#include "tdstore/cluster.h"
#include "tstorm/xml.h"

namespace tencentrec {
namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

// --- WindowedCounts vs naive reference ----------------------------------------

using WindowedCountsProperty = SeededTest;

TEST_P(WindowedCountsProperty, MatchesNaiveReference) {
  Rng rng(GetParam());
  const EventTime session_len = Hours(1);
  const int window = 1 + static_cast<int>(rng.Uniform(5));
  core::WindowedCounts counts(session_len, window);

  // Log of (session, item, delta) and (session, pair, delta); the reference
  // recomputes window sums from the log.
  std::vector<std::tuple<int64_t, core::ItemId, double>> item_log;
  std::vector<std::tuple<int64_t, core::ItemId, core::ItemId, double>>
      pair_log;

  EventTime now = 0;
  for (int step = 0; step < 400; ++step) {
    now += static_cast<EventTime>(rng.Uniform(Minutes(30)));
    const auto item = static_cast<core::ItemId>(1 + rng.Uniform(6));
    const auto other = static_cast<core::ItemId>(1 + rng.Uniform(6));
    const double delta = 0.5 + rng.NextDouble();
    const int64_t session = now / session_len;
    if (rng.Bernoulli(0.5)) {
      counts.AddItem(item, delta, now);
      item_log.emplace_back(session, item, delta);
    } else if (item != other) {
      counts.AddPair(item, other, delta, now);
      pair_log.emplace_back(session, std::min(item, other),
                            std::max(item, other), delta);
    }

    if (step % 20 != 0) continue;
    // Reference: sum log entries whose session is inside the window ending
    // at the latest session the structure has seen (the generator's event
    // times are monotone, so no late out-of-window adds occur).
    const int64_t latest = counts.CurrentSession();
    auto in_window = [&](int64_t s) { return s > latest - window; };
    for (core::ItemId i = 1; i <= 6; ++i) {
      double expected = 0.0;
      for (const auto& [s, it, d] : item_log) {
        if (it == i && in_window(s)) expected += d;
      }
      EXPECT_NEAR(counts.ItemCount(i), expected, 1e-9) << "item " << i;
    }
    for (core::ItemId a = 1; a <= 6; ++a) {
      for (core::ItemId b = a + 1; b <= 6; ++b) {
        double expected = 0.0;
        for (const auto& [s, lo, hi, d] : pair_log) {
          if (lo == a && hi == b && in_window(s)) expected += d;
        }
        EXPECT_NEAR(counts.PairCount(a, b), expected, 1e-9)
            << "pair (" << a << ", " << b << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowedCountsProperty,
                         ::testing::Values(10u, 20u, 30u, 40u));

// --- TopK vs full-sort reference ------------------------------------------------

using TopKProperty = SeededTest;

TEST_P(TopKProperty, MatchesSortedReference) {
  Rng rng(GetParam());
  const size_t k = 1 + rng.Uniform(6);
  TopK<int> topk(k);
  std::map<int, double> latest;  // id -> latest score

  for (int step = 0; step < 300; ++step) {
    const int id = static_cast<int>(rng.Uniform(20));
    if (rng.Bernoulli(0.1)) {
      topk.Erase(id);
      latest.erase(id);
      continue;
    }
    const double score = rng.NextDouble();
    topk.Update(id, score);
    latest[id] = score;  // last score sent per id

    ASSERT_LE(topk.size(), k);
    const auto& entries = topk.entries();
    // Invariant 1: descending order.
    for (size_t i = 1; i < entries.size(); ++i) {
      EXPECT_GE(entries[i - 1].score, entries[i].score);
    }
    // Invariant 2: threshold is the k-th best when full, else 0.
    if (topk.size() == k) {
      EXPECT_DOUBLE_EQ(topk.Threshold(), entries.back().score);
    } else {
      EXPECT_DOUBLE_EQ(topk.Threshold(), 0.0);
    }
    // Invariant 3: no stale scores — every entry carries the last score
    // sent for its id (an Update of a present id always applies).
    for (const auto& e : entries) {
      auto it = latest.find(e.id);
      ASSERT_NE(it, latest.end());
      EXPECT_DOUBLE_EQ(e.score, it->second);
    }
    // Invariant 4: an update above the current threshold is always admitted.
    if (!entries.empty()) {
      const double winning = entries.front().score + 1.0;
      topk.Update(99, winning);
      EXPECT_TRUE(topk.Contains(99));
      topk.Erase(99);
      latest.erase(99);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- TDStore under random ops + failovers vs shadow map -------------------------

using TdStoreProperty = SeededTest;

TEST_P(TdStoreProperty, ShadowMapUnderFailovers) {
  Rng rng(GetParam());
  tdstore::Cluster::Options options;
  options.num_data_servers = 3;
  options.num_instances = 8;
  auto cluster = tdstore::Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  tdstore::Client client(cluster->get());

  std::map<std::string, std::string> shadow;
  int down_server = -1;

  for (int step = 0; step < 600; ++step) {
    const std::string key = "k" + std::to_string(rng.Uniform(40));
    const double op = rng.NextDouble();
    if (op < 0.5) {
      const std::string value = "v" + std::to_string(step);
      ASSERT_TRUE(client.Put(key, value).ok()) << "step " << step;
      shadow[key] = value;
    } else if (op < 0.65) {
      ASSERT_TRUE(client.Delete(key).ok());
      shadow.erase(key);
    } else if (op < 0.95) {
      auto v = client.Get(key);
      auto it = shadow.find(key);
      if (it == shadow.end()) {
        EXPECT_TRUE(v.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(v.ok()) << key << ": " << v.status().ToString();
        EXPECT_EQ(*v, it->second);
      }
    } else {
      // Fail or recover a data server (at most one down at a time, so
      // every instance always retains a live replica).
      if (down_server < 0) {
        down_server = static_cast<int>(rng.Uniform(3));
        ASSERT_TRUE(cluster->get()->FailDataServer(down_server).ok());
      } else {
        ASSERT_TRUE(cluster->get()->RecoverDataServer(down_server).ok());
        down_server = -1;
      }
    }
  }
  // Final full verification.
  for (const auto& [key, value] : shadow) {
    auto v = client.Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TdStoreProperty,
                         ::testing::Values(100u, 200u, 300u, 400u));

// --- SegmentLog: arbitrary tail truncation recovers a clean prefix -------------

using SegmentLogProperty = SeededTest;

TEST_P(SegmentLogProperty, TruncationRecoversPrefix) {
  Rng rng(GetParam());
  const auto dir = std::filesystem::temp_directory_path() /
                   ("seglog_prop_" + std::to_string(::getpid()) + "_" +
                    std::to_string(GetParam()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "log").string();

  std::vector<tdaccess::Message> written;
  {
    tdaccess::SegmentLog log;
    ASSERT_TRUE(log.Open(path).ok());
    const int n = 5 + static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < n; ++i) {
      tdaccess::Message m;
      m.key = "key" + std::to_string(rng.Uniform(100));
      m.payload = std::string(rng.Uniform(50), 'x');
      m.timestamp = static_cast<EventTime>(rng.Uniform(1000000));
      ASSERT_TRUE(log.Append(m).ok());
      written.push_back(m);
    }
  }

  // Chop the file at a random byte boundary.
  const auto size = std::filesystem::file_size(path);
  const auto cut = rng.Uniform(size + 1);
  std::filesystem::resize_file(path, cut);

  tdaccess::SegmentLog recovered;
  ASSERT_TRUE(recovered.Open(path).ok());
  const auto end = recovered.EndOffset();
  ASSERT_LE(end, static_cast<tdaccess::Offset>(written.size()));
  auto records = recovered.Read(0, written.size());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), static_cast<size_t>(end));
  // Every surviving record is byte-exact — truncation never corrupts.
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*records)[i].key, written[i].key) << i;
    EXPECT_EQ((*records)[i].payload, written[i].payload) << i;
    EXPECT_EQ((*records)[i].timestamp, written[i].timestamp) << i;
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentLogProperty,
                         ::testing::Values(7u, 8u, 9u, 10u, 11u, 12u));

// --- UserHistory: co-rating deltas telescope to min(final ratings) -------------

using UserHistoryProperty = SeededTest;

TEST_P(UserHistoryProperty, CoRatingDeltasTelescope) {
  Rng rng(GetParam());
  core::UserHistory history;
  core::ActionWeights weights;
  const core::ActionType kTypes[] = {
      core::ActionType::kBrowse, core::ActionType::kClick,
      core::ActionType::kRead, core::ActionType::kPurchase};

  std::map<std::pair<core::ItemId, core::ItemId>, double> pair_sums;
  for (int step = 0; step < 200; ++step) {
    core::UserAction action;
    action.user = 1;
    action.item = static_cast<core::ItemId>(1 + rng.Uniform(5));
    action.action = kTypes[rng.Uniform(4)];
    action.timestamp = Seconds(step);  // all within linked time
    auto update = history.Apply(action, weights, Days(365));
    // Rating never decreases (max rule).
    EXPECT_GE(update.rating_delta, 0.0);
    for (const auto& p : update.pairs) {
      auto key = std::minmax(update.item, p.other);
      pair_sums[{key.first, key.second}] += p.co_rating_delta;
    }
  }
  // Telescoping: accumulated deltas equal min of the final ratings for
  // every pair that ever co-occurred.
  for (const auto& [pair, sum] : pair_sums) {
    const double expected =
        std::min(history.RatingOf(pair.first), history.RatingOf(pair.second));
    EXPECT_NEAR(sum, expected, 1e-9)
        << "(" << pair.first << ", " << pair.second << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UserHistoryProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// --- XML parser: random mutations never crash, valid docs round-trip -------------

using XmlProperty = SeededTest;

TEST_P(XmlProperty, RandomMutationsNeverCrash) {
  Rng rng(GetParam());
  const std::string valid = R"(
    <topology name="t">
      <spout name="s" class="S"/>
      <bolts>
        <bolt name="b" class="B" parallelism="2">
          <grouping type="field"><fields>user</fields></grouping>
        </bolt>
      </bolts>
    </topology>)";
  ASSERT_TRUE(tstorm::ParseXml(valid).ok());

  for (int round = 0; round < 200; ++round) {
    std::string mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.Uniform(5));
          break;
        default:
          mutated.insert(pos, rng.Bernoulli(0.5) ? "<" : ">");
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    // Must return (ok or error), never crash or hang.
    auto result = tstorm::ParseXml(mutated);
    (void)result;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlProperty,
                         ::testing::Values(77u, 78u, 79u, 80u));

}  // namespace
}  // namespace tencentrec
