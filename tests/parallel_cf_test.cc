#include "core/itemcf/parallel_cf.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/random.h"
#include "core/itemcf/item_cf.h"

namespace tencentrec::core {
namespace {

UserAction Act(UserId user, ItemId item, ActionType type, EventTime ts) {
  UserAction a;
  a.user = user;
  a.item = item;
  a.action = type;
  a.timestamp = ts;
  return a;
}

std::vector<UserAction> RandomActions(uint64_t seed, int num_actions,
                                      int num_users, int num_items) {
  Rng rng(seed);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kShare,
                               ActionType::kPurchase};
  std::vector<UserAction> actions;
  actions.reserve(static_cast<size_t>(num_actions));
  for (int i = 0; i < num_actions; ++i) {
    actions.push_back(
        Act(static_cast<UserId>(1 + rng.Uniform(num_users)),
            static_cast<ItemId>(1 + rng.Uniform(num_items)),
            kTypes[rng.Uniform(5)], Seconds(i)));
  }
  return actions;
}

/// Options under which the drained parallel executor must match the
/// reference bit-for-bit (up to float summation noise): lists never
/// overflow (top_k > #items) and pruning is off, so every layer's state is
/// a pure commutative sum over the action stream.
ParallelItemCf::Options ParityOptions(int num_items) {
  ParallelItemCf::Options options;
  options.cf.linked_time = Days(30);
  options.cf.window_sessions = 0;
  options.cf.enable_pruning = false;
  options.cf.top_k = static_cast<size_t>(num_items) + 8;
  options.user_shards = 4;
  options.pair_shards = 4;
  // Small batches/queues so the test exercises batching boundaries and
  // backpressure, not just one giant flush.
  options.batch_size = 7;
  options.queue_capacity = 4;
  options.count_stripes = 8;
  options.list_stripes = 8;
  return options;
}

void ExpectParity(const ParallelItemCf& parallel, const PracticalItemCf& ref,
                  int num_users, int num_items) {
  for (ItemId a = 1; a <= num_items; ++a) {
    for (ItemId b = a + 1; b <= num_items; ++b) {
      EXPECT_NEAR(parallel.Similarity(a, b), ref.Similarity(a, b), 1e-12)
          << "pair (" << a << ", " << b << ")";
      EXPECT_NEAR(parallel.EffectiveSimilarity(a, b),
                  ref.EffectiveSimilarity(a, b), 1e-12)
          << "pair (" << a << ", " << b << ")";
    }
  }
  for (UserId u = 1; u <= num_users; ++u) {
    EXPECT_EQ(parallel.RecentItemsOf(u), ref.RecentItemsOf(u)) << "user " << u;
    for (ItemId i = 1; i <= num_items; ++i) {
      EXPECT_DOUBLE_EQ(parallel.UserRating(u, i), ref.UserRating(u, i))
          << "user " << u << " item " << i;
    }
    const auto want = ref.RecommendForUser(u, 5);
    const auto got = parallel.RecommendForUser(u, 5);
    ASSERT_EQ(got.size(), want.size()) << "user " << u;
    for (size_t r = 0; r < want.size(); ++r) {
      EXPECT_EQ(got[r].item, want[r].item) << "user " << u << " rank " << r;
      EXPECT_NEAR(got[r].score, want[r].score, 1e-9)
          << "user " << u << " rank " << r;
    }
  }
}

TEST(ParallelItemCfTest, ParityCumulative) {
  const int kUsers = 20, kItems = 30;
  const auto actions = RandomActions(11, 2000, kUsers, kItems);

  ParallelItemCf::Options options = ParityOptions(kItems);
  ParallelItemCf parallel(options);
  PracticalItemCf reference(options.cf);

  for (const auto& action : actions) reference.ProcessAction(action);
  parallel.ProcessActions(actions);
  parallel.Drain();

  ExpectParity(parallel, reference, kUsers, kItems);
  EXPECT_EQ(parallel.stats().actions, reference.stats().actions);
  EXPECT_EQ(parallel.stats().pair_updates, reference.stats().pair_updates);
}

TEST(ParallelItemCfTest, ParityWindowed) {
  // Sliding-window mode: the drain watermark must settle every shard's
  // window at the stream's high-water timestamp, exactly as one serial
  // WindowedCounts would. The stream includes a multi-session gap so old
  // sessions genuinely expire.
  const int kUsers = 12, kItems = 16;
  ParallelItemCf::Options options = ParityOptions(kItems);
  options.cf.session_length = Hours(1);
  options.cf.window_sessions = 4;
  options.cf.linked_time = Hours(2);

  Rng rng(29);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kShare,
                               ActionType::kPurchase};
  std::vector<UserAction> actions;
  EventTime t = 0;
  for (int i = 0; i < 1200; ++i) {
    t += Seconds(1 + rng.Uniform(30));
    if (i == 600) t += Hours(7);  // expire everything mid-stream
    actions.push_back(Act(static_cast<UserId>(1 + rng.Uniform(kUsers)),
                          static_cast<ItemId>(1 + rng.Uniform(kItems)),
                          kTypes[rng.Uniform(5)], t));
  }

  ParallelItemCf parallel(options);
  PracticalItemCf reference(options.cf);
  for (const auto& action : actions) reference.ProcessAction(action);
  parallel.ProcessActions(actions);
  parallel.Drain();

  for (ItemId a = 1; a <= kItems; ++a) {
    for (ItemId b = a + 1; b <= kItems; ++b) {
      EXPECT_NEAR(parallel.Similarity(a, b), reference.Similarity(a, b),
                  1e-12)
          << "pair (" << a << ", " << b << ")";
    }
  }
}

TEST(ParallelItemCfTest, DrainThenContinue) {
  // Drain is a barrier, not an end-of-stream: ingestion composes across
  // drains exactly like one continuous stream.
  const int kUsers = 10, kItems = 12;
  const auto actions = RandomActions(3, 900, kUsers, kItems);

  ParallelItemCf::Options options = ParityOptions(kItems);
  ParallelItemCf parallel(options);
  PracticalItemCf reference(options.cf);
  for (const auto& action : actions) reference.ProcessAction(action);

  const size_t third = actions.size() / 3;
  std::vector<UserAction> part;
  for (size_t i = 0; i < actions.size(); ++i) {
    parallel.ProcessAction(actions[i]);
    if (i == third || i == 2 * third) parallel.Drain();
  }
  parallel.Drain();
  parallel.Drain();  // repeated drain of a quiescent pipeline is a no-op

  ExpectParity(parallel, reference, kUsers, kItems);
}

TEST(ParallelItemCfTest, ShutdownWithoutDrainDoesNotHang) {
  ParallelItemCf::Options options = ParityOptions(8);
  auto parallel = std::make_unique<ParallelItemCf>(options);
  const auto actions = RandomActions(5, 300, 8, 8);
  parallel->ProcessActions(actions);
  parallel->Shutdown();   // implies a drain; must terminate
  parallel->Shutdown();   // idempotent
  EXPECT_EQ(parallel->stats().actions,
            static_cast<int64_t>(actions.size()));
  parallel.reset();       // destructor after explicit Shutdown is fine
}

TEST(ParallelItemCfTest, StageStatsAggregate) {
  const auto actions = RandomActions(17, 500, 10, 10);
  ParallelItemCf::Options options = ParityOptions(10);
  ParallelItemCf parallel(options);
  parallel.ProcessActions(actions);
  parallel.Drain();

  const auto stages = parallel.stage_stats();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].stage, "user-history");
  EXPECT_EQ(stages[0].workers, options.user_shards);
  // Every action reaches layer 1 exactly once.
  EXPECT_EQ(stages[0].events, actions.size());
  EXPECT_GT(stages[0].batches, 0u);
  EXPECT_EQ(stages[1].stage, "count+sim");
  EXPECT_EQ(stages[1].workers, options.pair_shards);
  // Layer 2 consumes one event per pair delta.
  EXPECT_EQ(stages[1].events,
            static_cast<uint64_t>(parallel.stats().pair_updates +
                                  parallel.stats().pair_updates_pruned));
  EXPECT_EQ(parallel.stats().actions, static_cast<int64_t>(actions.size()));
}

TEST(ParallelItemCfTest, SingleShardDegenerateConfig) {
  // 1x1 shards with a tiny queue still drains correctly (the degenerate
  // serial configuration).
  const int kUsers = 8, kItems = 10;
  const auto actions = RandomActions(23, 600, kUsers, kItems);
  ParallelItemCf::Options options = ParityOptions(kItems);
  options.user_shards = 1;
  options.pair_shards = 1;
  options.queue_capacity = 1;
  options.batch_size = 1;

  ParallelItemCf parallel(options);
  PracticalItemCf reference(options.cf);
  for (const auto& action : actions) reference.ProcessAction(action);
  parallel.ProcessActions(actions);
  parallel.Drain();
  ExpectParity(parallel, reference, kUsers, kItems);
}

TEST(ParallelItemCfTest, PruningConcurrencySmoke) {
  // With pruning on and small lists, mid-stream similarity reads are racy
  // snapshots and prune timing is nondeterministic — exact parity is out of
  // scope. This is the TSan workload: heavy cross-shard traffic through the
  // shared stripes with pruning exercising the erase path. Run it under
  // -DTR_SANITIZE_THREAD=ON (ctest -L concurrent) to race-check.
  ParallelItemCf::Options options;
  options.cf.linked_time = Days(30);
  options.cf.window_sessions = 0;
  options.cf.enable_pruning = true;
  options.cf.hoeffding_delta = 0.2;
  options.cf.top_k = 3;
  options.user_shards = 4;
  options.pair_shards = 4;
  options.batch_size = 4;
  options.queue_capacity = 2;
  options.count_stripes = 4;
  options.list_stripes = 4;

  ParallelItemCf parallel(options);
  const auto actions = RandomActions(41, 4000, 30, 25);
  parallel.ProcessActions(actions);
  parallel.Drain();

  EXPECT_EQ(parallel.stats().actions, static_cast<int64_t>(actions.size()));
  // Sanity: the drained state is still a valid similarity structure.
  for (ItemId a = 1; a <= 25; ++a) {
    for (ItemId b = a + 1; b <= 25; ++b) {
      const double sim = parallel.Similarity(a, b);
      EXPECT_GE(sim, 0.0);
      EXPECT_LE(sim, 1.0 + 1e-9);
    }
  }
}

TEST(ParallelItemCfTest, ConcurrentDriversViaProcessActionsChunks) {
  // The driver API is single-threaded by contract, but nothing stops a
  // caller from interleaving ProcessAction with queries-after-drain in a
  // loop; make sure state survives many small drain cycles.
  ParallelItemCf::Options options = ParityOptions(10);
  ParallelItemCf parallel(options);
  PracticalItemCf reference(options.cf);

  const auto actions = RandomActions(53, 800, 10, 10);
  for (size_t i = 0; i < actions.size(); ++i) {
    reference.ProcessAction(actions[i]);
    parallel.ProcessAction(actions[i]);
    if (i % 97 == 0) {
      parallel.Drain();
      (void)parallel.RecommendForUser(actions[i].user, 3);
    }
  }
  parallel.Drain();
  ExpectParity(parallel, reference, 10, 10);
}

}  // namespace
}  // namespace tencentrec::core
