#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "engine/monitor.h"
#include "engine/tencentrec.h"

namespace tencentrec::engine {
namespace {

using core::ActionType;
using core::Demographics;
using core::UserAction;

UserAction Act(core::UserId user, core::ItemId item, ActionType type,
               EventTime ts) {
  UserAction a;
  a.user = user;
  a.item = item;
  a.action = type;
  a.timestamp = ts;
  a.demographics.gender = Demographics::kMale;
  a.demographics.age_band = 2;
  return a;
}

std::vector<UserAction> SeededTraffic() {
  std::vector<UserAction> actions;
  EventTime t = 0;
  for (core::UserId u = 1; u <= 8; ++u) {
    actions.push_back(Act(u, 101, ActionType::kClick, t += Seconds(1)));
    actions.push_back(Act(u, 102, ActionType::kClick, t += Seconds(1)));
    actions.push_back(Act(u, 103, ActionType::kBrowse, t += Seconds(1)));
  }
  return actions;
}

/// Deterministic snapshot assembled by hand, so renderer output is golden.
MonitorSnapshot HandBuiltSnapshot() {
  MonitorSnapshot snapshot;
  snapshot.app = "golden";
  snapshot.wall_micros = 1000000;
  snapshot.ingestion_lag = 5;
  snapshot.topology.push_back({"spout", 0, 100, 0, 0});
  snapshot.topology.push_back({"user_history", 100, 240, 1, 2000});
  snapshot.store.push_back({0, false, 50, 30, 12});
  snapshot.store.push_back({1, true, 7, 3, 0});
  snapshot.pipeline.push_back({"user-history", 2, 100, 10, 1500});
  snapshot.counters.push_back({"tdaccess.t.g.consumed", 100});
  snapshot.gauges.push_back({"tdaccess.t.g.lag", 5});

  SetMetricsEnabled(true);
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v * 10);
  snapshot.latencies.push_back(
      {"topo.golden.user_history.event_to_store_us", h.Snap()});
  return snapshot;
}

// --- golden renderer tests --------------------------------------------------

TEST(MonitorFormatTest, HumanReportSections) {
  const std::string report = FormatMonitorSnapshot(HandBuiltSnapshot());
  EXPECT_NE(report.find("== topology (last run) =="), std::string::npos);
  EXPECT_NE(report.find("== parallel cf pipeline =="), std::string::npos);
  EXPECT_NE(report.find("== tdstore =="), std::string::npos);
  EXPECT_NE(report.find("== tdaccess =="), std::string::npos);
  EXPECT_NE(report.find("== latency (us) =="), std::string::npos);
  EXPECT_NE(report.find("ingestion lag: 5"), std::string::npos);
  EXPECT_NE(report.find("server 1  DOWN"), std::string::npos);
  // The instrumented component row grows e2s percentile columns.
  EXPECT_NE(report.find("e2s[p50="), std::string::npos);
  EXPECT_NE(report.find("topo.golden.user_history.event_to_store_us"),
            std::string::npos);
  // The uninstrumented spout row must not.
  const size_t spout_pos = report.find("spout");
  const size_t spout_eol = report.find('\n', spout_pos);
  EXPECT_EQ(report.substr(spout_pos, spout_eol - spout_pos).find("e2s["),
            std::string::npos);
}

TEST(MonitorFormatTest, JsonExportShape) {
  const std::string json = ExportJson(HandBuiltSnapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"app\":\"golden\""), std::string::npos);
  EXPECT_NE(json.find("\"ingestion_lag\":5"), std::string::npos);
  EXPECT_NE(json.find("\"wall_micros\":1000000"), std::string::npos);
  EXPECT_NE(json.find("\"component\":\"user_history\""), std::string::npos);
  EXPECT_NE(json.find("\"down\":true"), std::string::npos);
  EXPECT_NE(json.find("\"tdaccess.t.g.consumed\":100"), std::string::npos);
  EXPECT_NE(
      json.find("\"topo.golden.user_history.event_to_store_us\":{\"count\":100"),
      std::string::npos);
  // Structural sanity: balanced braces/brackets, no stray newlines.
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_NE(c, '\n');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

/// Minimal OpenMetrics text-exposition validator: every non-comment line is
/// `metric_name{labels} value` (bucket lines may carry a
/// `# {trace_id="..."} ts` exemplar annotation), histogram bucket series are
/// cumulative and non-decreasing, every histogram's +Inf bucket equals its
/// _count, and the document ends with `# EOF`.
void ValidatePrometheusText(const std::string& text) {
  std::map<std::string, uint64_t> last_bucket;   // series -> last cumulative
  std::map<std::string, uint64_t> inf_bucket;    // series -> +Inf value
  std::map<std::string, uint64_t> count_series;  // series -> _count value
  std::istringstream in(text);
  std::string line;
  bool saw_eof = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    EXPECT_FALSE(saw_eof) << "content after # EOF: " << line;
    if (line[0] == '#') {
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    // Exemplar annotations ride after the value; strip (and sanity-check)
    // them before the series/value split.
    const size_t exemplar = line.find(" # ");
    if (exemplar != std::string::npos) {
      EXPECT_NE(line.find("{trace_id=\"", exemplar), std::string::npos)
          << line;
      line = line.substr(0, exemplar);
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(series.empty()) << line;
    ASSERT_TRUE(std::isalpha(static_cast<unsigned char>(series[0])) ||
                series[0] == '_')
        << line;
    // Value parses as a number.
    size_t parsed = 0;
    const double v = std::stod(value, &parsed);
    EXPECT_EQ(parsed, value.size()) << line;
    EXPECT_GE(v, 0.0) << line;
    // Balanced label braces.
    const size_t open = series.find('{');
    if (open != std::string::npos) {
      ASSERT_EQ(series.back(), '}') << line;
      EXPECT_EQ(series.find('{', open + 1), std::string::npos) << line;
    }
    // Histogram invariants, keyed by the full label set minus `le`.
    const size_t le = series.find(",le=\"");
    if (series.rfind("tencentrec_latency_us_bucket", 0) == 0 &&
        le != std::string::npos) {
      const std::string key = series.substr(0, le);
      const auto n = static_cast<uint64_t>(v);
      if (series.find("le=\"+Inf\"") != std::string::npos) {
        inf_bucket[key] = n;
      } else {
        auto it = last_bucket.find(key);
        if (it != last_bucket.end()) {
          EXPECT_GE(n, it->second) << "non-monotone CDF: " << line;
        }
        last_bucket[key] = n;
      }
    }
    if (series.rfind("tencentrec_latency_us_count", 0) == 0) {
      count_series[series.substr(27)] = static_cast<uint64_t>(v);
    }
  }
  for (const auto& [key, n] : inf_bucket) {
    auto it = last_bucket.find(key);
    if (it != last_bucket.end()) {
      EXPECT_GE(n, it->second) << key;
    }
  }
  EXPECT_TRUE(saw_eof) << "missing # EOF trailer";
  // Every histogram emitted a _count matching its +Inf bucket.
  for (const auto& [key, n] : inf_bucket) {
    // key is "tencentrec_latency_us_bucket{name=\"...\"" minus le; the
    // corresponding count label set is the same text after the family name.
    const std::string labels = key.substr(key.find('{')) + "}";
    auto it = count_series.find(labels);
    ASSERT_NE(it, count_series.end()) << key;
    EXPECT_EQ(it->second, n) << key;
  }
}

TEST(MonitorFormatTest, PrometheusExportIsValidExposition) {
  const std::string text = ExportPrometheusText(HandBuiltSnapshot());
  ValidatePrometheusText(text);
  EXPECT_NE(text.find("# TYPE tencentrec_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("tencentrec_gauge{name=\"engine.ingestion_lag\"} 5"),
            std::string::npos);
  EXPECT_NE(
      text.find("tencentrec_store_ops_total{server=\"0\",op=\"read\"} 50"),
      std::string::npos);
  EXPECT_NE(text.find("tencentrec_latency_us_count{name=\"topo.golden."
                      "user_history.event_to_store_us\"} 100"),
            std::string::npos);
}

TEST(MonitorFormatTest, SnapshotDeltaRatesAndUtilization) {
  MonitorSnapshot before = HandBuiltSnapshot();
  MonitorSnapshot after = before;
  after.wall_micros = before.wall_micros + 2000000;  // 2s later
  after.topology[1].executed += 500;
  after.topology[1].busy_micros += 1000000;  // busy half the wall time
  after.store[0].reads += 100;
  after.store[0].writes += 60;
  after.ingestion_lag = 1;

  SnapshotDelta delta = ComputeSnapshotDelta(before, after);
  EXPECT_DOUBLE_EQ(delta.wall_seconds, 2.0);
  EXPECT_DOUBLE_EQ(delta.events_per_second, 250.0);
  EXPECT_DOUBLE_EQ(delta.store_reads_per_second, 50.0);
  EXPECT_DOUBLE_EQ(delta.store_writes_per_second, 30.0);
  EXPECT_EQ(delta.lag_delta, -4);
  ASSERT_EQ(delta.utilization.size(), after.topology.size());
  EXPECT_EQ(delta.utilization[1].component, "user_history");
  EXPECT_DOUBLE_EQ(delta.utilization[1].busy_over_wall, 0.5);
  EXPECT_DOUBLE_EQ(delta.utilization[0].busy_over_wall, 0.0);

  // Identical snapshots (zero wall delta) yield no rates, not NaN — and
  // the utilization rows still come back, all zero, rather than dividing
  // busy time by a zero wall.
  SnapshotDelta zero = ComputeSnapshotDelta(before, before);
  EXPECT_DOUBLE_EQ(zero.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(zero.events_per_second, 0.0);
  EXPECT_DOUBLE_EQ(zero.store_reads_per_second, 0.0);
  EXPECT_DOUBLE_EQ(zero.store_writes_per_second, 0.0);
  ASSERT_EQ(zero.utilization.size(), before.topology.size());
  for (const auto& u : zero.utilization) {
    EXPECT_DOUBLE_EQ(u.busy_over_wall, 0.0);
  }

  // Busy time accrued in the same instant must not divide by zero either.
  MonitorSnapshot same_instant = after;
  same_instant.wall_micros = before.wall_micros;
  SnapshotDelta burst = ComputeSnapshotDelta(before, same_instant);
  EXPECT_DOUBLE_EQ(burst.wall_seconds, 0.0);
  for (const auto& u : burst.utilization) {
    EXPECT_DOUBLE_EQ(u.busy_over_wall, 0.0);
  }
}

// --- end-to-end: seeded engine run ------------------------------------------

TEST(MonitorEngineTest, SeededRunExportsLatencies) {
  SetMetricsEnabled(true);
  MetricRegistry::Default().Reset();

  TencentRec::Options options;
  options.app.app = "monapp";
  options.app.parallelism = 2;
  options.app.linked_time = Days(30);
  options.app.combiner_interval = 8;
  options.store.num_data_servers = 2;
  options.store.num_instances = 8;
  options.materialize_results = true;
  options.mirror_parallel_cf = true;
  auto engine = TencentRec::Create(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  ASSERT_TRUE((*engine)->PublishActions(SeededTraffic()).ok());
  ASSERT_TRUE((*engine)->ProcessFromAccess().ok());

  auto snapshot = CollectMonitorSnapshot(engine->get());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_GT(snapshot->wall_micros, 0u);
  EXPECT_EQ(snapshot->app, "monapp");

  // The instrumented hot paths all produced samples: event-to-store on the
  // topology components, per-op tdstore latency, consumer staleness.
  const auto* uh = snapshot->ComponentLatency("user_history");
  ASSERT_NE(uh, nullptr);
  EXPECT_GT(uh->count, 0u);
  EXPECT_GE(uh->Percentile(0.99), uh->Percentile(0.50));
  const auto* rs = snapshot->ComponentLatency("result_storage");
  ASSERT_NE(rs, nullptr);
  EXPECT_GT(rs->count, 0u);
  const auto* reads = snapshot->FindLatency("tdstore.client.read_us");
  ASSERT_NE(reads, nullptr);
  EXPECT_GT(reads->hist.count, 0u);
  const auto* pipeline_service = snapshot->FindLatency(
      "parallel_cf.monapp.user-history.service_us");
  ASSERT_NE(pipeline_service, nullptr);

  // The mirror only sees ProcessBatch traffic; run one batch through it so
  // its stage histograms populate too.
  ASSERT_TRUE((*engine)->ProcessBatch(SeededTraffic()).ok());
  auto snapshot2 = CollectMonitorSnapshot(engine->get());
  ASSERT_TRUE(snapshot2.ok());
  const auto* service2 = snapshot2->FindLatency(
      "parallel_cf.monapp.user-history.service_us");
  ASSERT_NE(service2, nullptr);
  EXPECT_GT(service2->hist.count, 0u);

  // Exports of the live snapshot are well-formed.
  ValidatePrometheusText(ExportPrometheusText(*snapshot2));
  const std::string report = FormatMonitorSnapshot(*snapshot2);
  EXPECT_NE(report.find("== latency (us) =="), std::string::npos);
  EXPECT_NE(report.find("event_to_store_us"), std::string::npos);

  // Rates between the two snapshots are finite and non-negative.
  SnapshotDelta delta = ComputeSnapshotDelta(*snapshot, *snapshot2);
  EXPECT_GT(delta.wall_seconds, 0.0);
  EXPECT_GE(delta.events_per_second, 0.0);
}

}  // namespace
}  // namespace tencentrec::engine
