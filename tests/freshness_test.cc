// The freshness/SLO plane in isolation: event-time watermarks under
// out-of-order stamps, the time-series ring's delta semantics, and
// burn-rate SLO evaluation feeding readiness.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "obs/freshness.h"
#include "obs/health.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace tencentrec {
namespace {

using obs::FreshnessTracker;
using obs::HealthRegistry;
using obs::SloRegistry;
using obs::TimeSeriesStore;

// --- FreshnessTracker -------------------------------------------------------

TEST(FreshnessTrackerTest, OutOfOrderStampsNeverRegressTheWatermark) {
  FreshnessTracker tracker;
  auto slot = tracker.RegisterSlot("bolt");
  slot.Advance(1000);
  slot.Advance(400);  // late data
  slot.Advance(0);    // unstamped tuple
  EXPECT_EQ(tracker.StageWatermark("bolt"), 1000u);
  slot.Advance(2500);
  slot.Advance(2499);
  EXPECT_EQ(tracker.StageWatermark("bolt"), 2500u);
}

TEST(FreshnessTrackerTest, StageWatermarkIsMinOverSlotsThatSawData) {
  FreshnessTracker tracker;
  auto a = tracker.RegisterSlot("bolt");
  auto b = tracker.RegisterSlot("bolt");
  auto idle = tracker.RegisterSlot("bolt");  // never advances
  a.Advance(900);
  b.Advance(600);
  // min over live slots with data; the idle slot must not pin at 0.
  EXPECT_EQ(tracker.StageWatermark("bolt"), 600u);

  const auto lags = tracker.Lags(/*now=*/1000);
  ASSERT_EQ(lags.size(), 1u);
  EXPECT_EQ(lags[0].stage, "bolt");
  EXPECT_EQ(lags[0].watermark_micros, 600u);
  EXPECT_EQ(lags[0].lag_micros, 400u);  // hand-computed: 1000 - 600
  EXPECT_EQ(lags[0].live_slots, 2);
}

TEST(FreshnessTrackerTest, HandComputedLagsOnASeededMultiStageRun) {
  FreshnessTracker tracker;
  auto spout = tracker.RegisterSlot("spout");
  auto bolt1 = tracker.RegisterSlot("count");
  auto bolt2 = tracker.RegisterSlot("count");
  auto sink = tracker.RegisterSlot("store");

  // A seeded run: the spout emitted through t=5000, the two count
  // instances processed through 4000 and 3000, the sink through 2000 —
  // stamps arriving out of order at every stage.
  for (uint64_t t : {1000u, 3000u, 2000u, 5000u, 4000u}) spout.Advance(t);
  for (uint64_t t : {4000u, 1000u}) bolt1.Advance(t);
  for (uint64_t t : {2000u, 3000u, 2500u}) bolt2.Advance(t);
  sink.Advance(2000);

  const auto lags = tracker.Lags(/*now=*/6000);
  ASSERT_EQ(lags.size(), 3u);  // sorted by stage name
  EXPECT_EQ(lags[0].stage, "count");
  EXPECT_EQ(lags[0].watermark_micros, 3000u);  // min(4000, 3000)
  EXPECT_EQ(lags[0].lag_micros, 3000u);
  EXPECT_EQ(lags[1].stage, "spout");
  EXPECT_EQ(lags[1].watermark_micros, 5000u);
  EXPECT_EQ(lags[1].lag_micros, 1000u);
  EXPECT_EQ(lags[2].stage, "store");
  EXPECT_EQ(lags[2].watermark_micros, 2000u);
  EXPECT_EQ(lags[2].lag_micros, 4000u);

  // End-to-end: the pipeline has durably processed everything <= 2000.
  EXPECT_EQ(tracker.EndToEndLag(6000), 4000u);
}

TEST(FreshnessTrackerTest, EndToEndLagIsZeroUntilEveryStageSawData) {
  FreshnessTracker tracker;
  auto a = tracker.RegisterSlot("spout");
  auto b = tracker.RegisterSlot("store");
  a.Advance(5000);
  EXPECT_EQ(tracker.EndToEndLag(9000), 0u);  // store never saw data
  b.Advance(1000);
  EXPECT_EQ(tracker.EndToEndLag(9000), 8000u);
}

TEST(FreshnessTrackerTest, CleanRetirementFoldsIntoTheStageWatermark) {
  FreshnessTracker tracker;
  {
    auto slot = tracker.RegisterSlot("bolt");
    slot.Advance(7000);
  }  // retires: a drained run processed everything it emitted
  EXPECT_EQ(tracker.StageWatermark("bolt"), 7000u);
  // A new instance that lags does not drag the stage below the retired
  // mark (max(retired, live-min) semantics).
  auto young = tracker.RegisterSlot("bolt");
  young.Advance(6000);
  EXPECT_EQ(tracker.StageWatermark("bolt"), 7000u);
  young.Advance(8000);
  EXPECT_EQ(tracker.StageWatermark("bolt"), 8000u);
}

TEST(FreshnessTrackerTest, PublishGaugesWritesLagAndWatermarkSeries) {
  SetMetricsEnabled(true);
  FreshnessTracker tracker;
  auto slot = tracker.RegisterSlot("stage-x");
  slot.Advance(1500);
  MetricRegistry registry;
  tracker.PublishGauges(&registry, /*now=*/2000);
  bool saw_lag = false;
  bool saw_watermark = false;
  bool saw_e2e = false;
  for (const auto& [name, value] : registry.Gauges()) {
    if (name == "freshness.stage-x.lag_us") {
      saw_lag = true;
      EXPECT_EQ(value, 500);
    } else if (name == "freshness.stage-x.watermark_us") {
      saw_watermark = true;
      EXPECT_EQ(value, 1500);
    } else if (name == "freshness.e2e.lag_us") {
      saw_e2e = true;
      EXPECT_EQ(value, 500);
    }
  }
  EXPECT_TRUE(saw_lag);
  EXPECT_TRUE(saw_watermark);
  EXPECT_TRUE(saw_e2e);
}

// --- TimeSeriesStore --------------------------------------------------------

TEST(TimeSeriesStoreTest, CountersStayCumulativeAndGaugesInstantaneous) {
  SetMetricsEnabled(true);
  MetricRegistry registry;
  Counter* c = registry.GetCounter("ops");
  Gauge* g = registry.GetGauge("depth");
  TimeSeriesStore::Options opts;
  opts.capacity = 8;
  TimeSeriesStore store(&registry, opts);

  c->Add(10);
  g->Set(3);
  store.SampleNow(1000);
  c->Add(5);
  g->Set(7);
  store.SampleNow(2000);

  const auto ops = store.Series("ops", 0);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].value, 10.0);
  EXPECT_EQ(ops[1].value, 15.0);  // cumulative, not per-interval
  const auto depth = store.Series("depth", 0);
  ASSERT_EQ(depth.size(), 2u);
  EXPECT_EQ(depth[0].value, 3.0);
  EXPECT_EQ(depth[1].value, 7.0);
  EXPECT_EQ(store.sample_count(), 2u);
}

TEST(TimeSeriesStoreTest, HistogramPercentilesArePerInterval) {
  SetMetricsEnabled(true);
  MetricRegistry registry;
  LatencyHistogram* h = registry.GetHistogram("lat");
  TimeSeriesStore store(&registry, TimeSeriesStore::Options{});

  for (int i = 0; i < 100; ++i) h->Record(100);  // slow interval
  store.SampleNow(1000);
  for (int i = 0; i < 100; ++i) h->Record(5);  // fast interval
  store.SampleNow(2000);

  const auto p99 = store.Series("lat.p99", 0);
  ASSERT_EQ(p99.size(), 2u);
  // First sample sees the whole history (all 100us); the second interval
  // holds only the fast records, so its p99 must NOT be dragged up by the
  // first interval's slow ones.
  EXPECT_GE(p99[0].value, 100.0);
  EXPECT_LT(p99[1].value, 100.0);
  const auto count = store.Series("lat.count", 0);
  ASSERT_EQ(count.size(), 2u);
  EXPECT_EQ(count[1].value, 200.0);  // cumulative

  // An idle interval contributes a count point but no percentile point.
  store.SampleNow(3000);
  EXPECT_EQ(store.Series("lat.p99", 0).size(), 2u);
  EXPECT_EQ(store.Series("lat.count", 0).size(), 3u);
}

TEST(TimeSeriesStoreTest, RingEvictsOldestAndWindowsAnchorAtNewest) {
  SetMetricsEnabled(true);
  MetricRegistry registry;
  Gauge* g = registry.GetGauge("v");
  TimeSeriesStore::Options opts;
  opts.capacity = 4;
  TimeSeriesStore store(&registry, opts);
  for (int i = 1; i <= 6; ++i) {
    g->Set(i);
    store.SampleNow(static_cast<uint64_t>(i) * 1000);
  }
  const auto all = store.Series("v", 0);
  ASSERT_EQ(all.size(), 4u);  // 2 oldest evicted
  EXPECT_EQ(all.front().value, 3.0);
  EXPECT_EQ(all.back().value, 6.0);
  // Window of 1000us anchored at newest (t=6000): keeps t in [5000, 6000].
  const auto windowed = store.Series("v", 1000);
  ASSERT_EQ(windowed.size(), 2u);
  EXPECT_EQ(windowed.front().value, 5.0);
}

TEST(TimeSeriesStoreTest, QueryJsonShapes) {
  SetMetricsEnabled(true);
  MetricRegistry registry;
  registry.GetGauge("g")->Set(42);
  TimeSeriesStore store(&registry, TimeSeriesStore::Options{});
  store.SampleNow(5000);
  const std::string json = store.QueryJson("g", 0);
  EXPECT_NE(json.find("\"series\":\"g\""), std::string::npos);
  EXPECT_NE(json.find("{\"t\":5000,\"v\":42}"), std::string::npos);
  // Unknown series: empty points, not an error.
  EXPECT_NE(store.QueryJson("nope", 0).find("\"points\":[]"),
            std::string::npos);
}

// --- SloRegistry ------------------------------------------------------------

TEST(SloRegistryTest, MaxValueBreachNeedsBothWindowsAndFeedsReadiness) {
  SetMetricsEnabled(true);
  MetricRegistry registry;
  Gauge* lag = registry.GetGauge("freshness.e2e.lag_us");
  TimeSeriesStore::Options topts;
  topts.capacity = 64;
  TimeSeriesStore store(&registry, topts);
  HealthRegistry health;
  health.SetReady(true);
  SloRegistry slo(&store, &health);
  SloRegistry::Objective o;
  o.name = "freshness";
  o.kind = SloRegistry::Kind::kMaxValue;
  o.metric = "freshness.e2e.lag_us";
  o.threshold = 5000.0;
  o.short_window_micros = 10 * 1000;
  o.long_window_micros = 50 * 1000;
  o.affects_readiness = true;
  slo.AddObjective(o);

  // Healthy sample: under threshold -> not breached, ready.
  lag->Set(1000);
  store.SampleNow(1000);
  slo.EvaluateNow(1000);
  ASSERT_EQ(slo.Statuses().size(), 1u);
  EXPECT_FALSE(slo.Statuses()[0].breached);
  EXPECT_TRUE(slo.Statuses()[0].has_data);
  EXPECT_TRUE(health.Ready());

  // Breach sample: over threshold in both windows within one evaluation.
  lag->Set(9000);
  store.SampleNow(2000);
  slo.EvaluateNow(2000);
  EXPECT_TRUE(slo.Statuses()[0].breached);
  EXPECT_FALSE(health.Ready());    // affects_readiness gates /readyz
  EXPECT_FALSE(health.Healthy());  // and degrades /healthz
  EXPECT_NE(health.Json().find("slo.freshness"), std::string::npos);

  // Recovery: once the bad sample ages out of both windows (windows anchor
  // at the newest sample), the objective clears and readiness returns.
  lag->Set(100);
  store.SampleNow(2000 + 60 * 1000);
  slo.EvaluateNow(2000 + 60 * 1000);
  EXPECT_FALSE(slo.Statuses()[0].breached);
  EXPECT_TRUE(health.Ready());
}

TEST(SloRegistryTest, MaxRatioComputesWindowDeltasOverCumulativeCounters) {
  SetMetricsEnabled(true);
  MetricRegistry registry;
  Counter* errors = registry.GetCounter("store.errors");
  Counter* ops = registry.GetCounter("store.ops");
  TimeSeriesStore store(&registry, TimeSeriesStore::Options{});
  HealthRegistry health;
  SloRegistry slo(&store, &health);
  SloRegistry::Objective o;
  o.name = "errors";
  o.kind = SloRegistry::Kind::kMaxRatio;
  o.metric = "store.errors";
  o.denominator = "store.ops";
  o.threshold = 0.001;  // 0.1% budget
  o.short_window_micros = 10 * 1000;
  o.long_window_micros = 10 * 1000;
  slo.AddObjective(o);

  // 1000 ops, 0 errors.
  ops->Add(1000);
  store.SampleNow(1000);
  store.SampleNow(2000);
  slo.EvaluateNow(2000);
  EXPECT_FALSE(slo.Statuses()[0].breached);

  // 50 errors in 100 more ops: windowed fraction 50/100 >> 0.1%.
  errors->Add(50);
  ops->Add(100);
  store.SampleNow(3000);
  slo.EvaluateNow(3000);
  EXPECT_TRUE(slo.Statuses()[0].breached);
  EXPECT_GT(slo.Statuses()[0].short_value, 0.1);
}

TEST(SloRegistryTest, WildcardAggregatesWithMaxAndNoDataIsNotBreached) {
  SetMetricsEnabled(true);
  MetricRegistry registry;
  TimeSeriesStore store(&registry, TimeSeriesStore::Options{});
  HealthRegistry health;
  SloRegistry slo(&store, &health);
  SloRegistry::Objective o;
  o.name = "p99";
  o.kind = SloRegistry::Kind::kMaxValue;
  o.metric = "topo.app.*.p99";
  o.threshold = 100.0;
  o.short_window_micros = 10 * 1000;
  o.long_window_micros = 10 * 1000;
  slo.AddObjective(o);

  // Empty ring: no data, explicitly not breached.
  slo.EvaluateNow(500);
  EXPECT_FALSE(slo.Statuses()[0].breached);
  EXPECT_FALSE(slo.Statuses()[0].has_data);

  registry.GetGauge("topo.app.fast.p99")->Set(10);
  registry.GetGauge("topo.app.slow.p99")->Set(900);
  registry.GetGauge("unrelated.p99")->Set(99999);
  store.SampleNow(1000);
  slo.EvaluateNow(1000);
  // As slow as the slowest matching component, ignoring non-matches.
  EXPECT_TRUE(slo.Statuses()[0].breached);
  EXPECT_EQ(slo.Statuses()[0].short_value, 900.0);

  const std::string json = slo.Json();
  EXPECT_NE(json.find("\"name\":\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"breached\":true"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"max_value\""), std::string::npos);
}

}  // namespace
}  // namespace tencentrec
