#include <gtest/gtest.h>

#include "tstorm/config.h"
#include "tstorm/xml.h"

namespace tencentrec::tstorm {
namespace {

// --- parser -----------------------------------------------------------------

TEST(XmlTest, ParsesSimpleElement) {
  auto doc = ParseXml("<root/>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ((*doc)->name, "root");
}

TEST(XmlTest, ParsesAttributes) {
  auto doc = ParseXml(R"(<topology name="cf-test" version='2'/>)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->Attr("name"), "cf-test");
  EXPECT_EQ((*doc)->Attr("version"), "2");
  EXPECT_FALSE((*doc)->HasAttr("missing"));
  EXPECT_EQ((*doc)->Attr("missing"), "");
}

TEST(XmlTest, ParsesNestedChildrenAndText) {
  auto doc = ParseXml(R"(<a><b>hello</b><b>world</b><c>  spaced  </c></a>)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->Children("b").size(), 2u);
  EXPECT_EQ((*doc)->ChildText("b"), "hello");
  EXPECT_EQ((*doc)->ChildText("c"), "spaced");
  EXPECT_EQ((*doc)->ChildText("missing"), "");
}

TEST(XmlTest, DecodesEntities) {
  auto doc = ParseXml(R"(<x v="a&lt;b&amp;c">1 &gt; 0</x>)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->Attr("v"), "a<b&c");
  EXPECT_NE((*doc)->text.find("1 > 0"), std::string::npos);
}

TEST(XmlTest, SkipsCommentsAndDeclaration) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?><!-- header --><root><!-- inner --><a/></root>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->children.size(), 1u);
}

TEST(XmlTest, RejectsMismatchedTags) {
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a></a><b></b>").ok());  // two roots
  EXPECT_FALSE(ParseXml(R"(<a v=foo></a>)").ok());  // unquoted attribute
}

// --- topology config --------------------------------------------------------

class NullSpout : public ISpout {
 public:
  std::vector<StreamDecl> DeclareOutputs() const override {
    return {{"user_action", {"user", "item", "action"}}};
  }
  bool NextBatch(OutputCollector& out) override {
    (void)out;
    return false;
  }
};

class NullBolt : public IBolt {
 public:
  void Execute(const Tuple& input, const TupleSource& source,
               OutputCollector& out) override {
    (void)input;
    (void)source;
    (void)out;
  }
};

ComponentRegistry MakeRegistry() {
  ComponentRegistry registry;
  registry.RegisterSpout("Spout", [] { return std::make_unique<NullSpout>(); });
  for (const char* name : {"Pretreatment", "CtrStore", "CtrBolt",
                           "ResultStorage"}) {
    registry.RegisterBolt(name, [] { return std::make_unique<NullBolt>(); });
  }
  return registry;
}

/// The example configuration of the paper's Figure 7 (ctr-test topology).
constexpr const char* kFigure7Xml = R"(
<topology name="cf-test">
  <spout name="spout" class="Spout">
    <output_fields>
      <stream_id>user_action</stream_id>
      <fields>user, item, action</fields>
    </output_fields>
  </spout>
  <bolts>
    <bolt name="pretreatment" class="Pretreatment">
      <grouping type="field">
        <fields>user</fields>
        <stream_id>user_action</stream_id>
      </grouping>
    </bolt>
    <bolt name="ctrStore" class="CtrStore"/>
    <bolt name="ctrBolt" class="CtrBolt"/>
    <bolt name="resultStorage" class="ResultStorage"/>
  </bolts>
</topology>
)";

TEST(TopologyConfigTest, BuildsFigure7Topology) {
  ComponentRegistry registry = MakeRegistry();
  auto spec = BuildTopologyFromXml(kFigure7Xml, registry);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "cf-test");
  ASSERT_EQ(spec->components.size(), 5u);
  EXPECT_TRUE(spec->components[0].is_spout);
  // Linear chain: each bolt without explicit grouping shuffles from the
  // previous component.
  ASSERT_EQ(spec->edges.size(), 4u);
  EXPECT_EQ(spec->edges[0].producer, "spout");
  EXPECT_EQ(spec->edges[0].consumer, "pretreatment");
  EXPECT_EQ(spec->edges[0].grouping.type, GroupingType::kFields);
  ASSERT_EQ(spec->edges[0].grouping.fields.size(), 1u);
  EXPECT_EQ(spec->edges[0].grouping.fields[0], "user");
  EXPECT_EQ(spec->edges[1].producer, "pretreatment");
  EXPECT_EQ(spec->edges[1].consumer, "ctrStore");
  EXPECT_EQ(spec->edges[1].grouping.type, GroupingType::kShuffle);
  EXPECT_EQ(spec->edges[3].consumer, "resultStorage");
}

TEST(TopologyConfigTest, ParallelismAndTickInterval) {
  ComponentRegistry registry = MakeRegistry();
  auto spec = BuildTopologyFromXml(R"(
    <topology name="t">
      <spout name="s" class="Spout" parallelism="2"/>
      <bolt name="b" class="Pretreatment" parallelism="3">
        <tick_interval>50</tick_interval>
        <grouping type="shuffle"><source>s</source></grouping>
      </bolt>
    </topology>)",
                                   registry);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->components[0].parallelism, 2);
  EXPECT_EQ(spec->components[1].parallelism, 3);
  EXPECT_EQ(spec->components[1].tick_interval, 50);
}

TEST(TopologyConfigTest, UnregisteredClassFails) {
  ComponentRegistry registry = MakeRegistry();
  auto spec = BuildTopologyFromXml(
      R"(<topology><spout name="s" class="Ghost"/></topology>)", registry);
  EXPECT_FALSE(spec.ok());
  EXPECT_TRUE(spec.status().IsNotFound());
}

TEST(TopologyConfigTest, MissingSpoutFails) {
  ComponentRegistry registry = MakeRegistry();
  auto spec = BuildTopologyFromXml(
      R"(<topology><bolt name="b" class="Pretreatment"/></topology>)",
      registry);
  EXPECT_FALSE(spec.ok());
}

TEST(TopologyConfigTest, BadParallelismFails) {
  ComponentRegistry registry = MakeRegistry();
  auto spec = BuildTopologyFromXml(
      R"(<topology><spout name="s" class="Spout" parallelism="0"/></topology>)",
      registry);
  EXPECT_FALSE(spec.ok());
}

TEST(TopologyConfigTest, GroupingTypesParse) {
  ComponentRegistry registry = MakeRegistry();
  auto spec = BuildTopologyFromXml(R"(
    <topology name="g">
      <spout name="s" class="Spout"/>
      <bolt name="b1" class="Pretreatment">
        <grouping type="global"><source>s</source></grouping>
      </bolt>
      <bolt name="b2" class="Pretreatment">
        <grouping type="all"><source>s</source></grouping>
      </bolt>
    </topology>)",
                                   registry);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->edges[0].grouping.type, GroupingType::kGlobal);
  EXPECT_EQ(spec->edges[1].grouping.type, GroupingType::kAll);
}

TEST(TopologyConfigTest, UnknownGroupingTypeFails) {
  ComponentRegistry registry = MakeRegistry();
  auto spec = BuildTopologyFromXml(R"(
    <topology name="g">
      <spout name="s" class="Spout"/>
      <bolt name="b" class="Pretreatment">
        <grouping type="mystery"><source>s</source></grouping>
      </bolt>
    </topology>)",
                                   registry);
  EXPECT_FALSE(spec.ok());
}

}  // namespace
}  // namespace tencentrec::tstorm
