#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "core/itemcf/item_cf.h"
#include "engine/monitor.h"
#include "engine/tencentrec.h"
#include "tdstore/client.h"
#include "topo/blob_codec.h"

namespace tencentrec::engine {
namespace {

using core::ActionType;
using core::Demographics;
using core::ItemId;
using core::UserAction;
using core::UserId;

UserAction Act(UserId user, ItemId item, ActionType type, EventTime ts,
               Demographics d = {}) {
  UserAction a;
  a.user = user;
  a.item = item;
  a.action = type;
  a.timestamp = ts;
  a.demographics = d;
  return a;
}

Demographics Male(uint8_t age = 2) {
  Demographics d;
  d.gender = Demographics::kMale;
  d.age_band = age;
  return d;
}

TencentRec::Options BaseOptions(const std::string& app) {
  TencentRec::Options options;
  options.app.app = app;
  options.app.parallelism = 2;
  options.app.linked_time = Days(30);
  options.app.combiner_interval = 8;
  options.store.num_data_servers = 2;
  options.store.num_instances = 8;
  return options;
}

/// A co-click clique plus a cold user: standard fixture traffic.
std::vector<UserAction> CliqueTraffic() {
  std::vector<UserAction> actions;
  EventTime t = 0;
  for (UserId u = 1; u <= 6; ++u) {
    actions.push_back(Act(u, 101, ActionType::kClick, t += Seconds(1), Male()));
    actions.push_back(Act(u, 102, ActionType::kClick, t += Seconds(1), Male()));
  }
  actions.push_back(Act(50, 101, ActionType::kClick, t += Seconds(1), Male()));
  return actions;
}

TEST(EngineTest, CfRecommendationFromStore) {
  auto engine = TencentRec::Create(BaseOptions("cf"));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->ProcessBatch(CliqueTraffic()).ok());

  auto recs = (*engine)->query().RecommendCf(50, 3, Seconds(100));
  ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].item, 102);  // co-clicked with the user's item 101
}

TEST(EngineTest, HybridFallsBackToGroupHotItems) {
  auto engine = TencentRec::Create(BaseOptions("hybrid"));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->ProcessBatch(CliqueTraffic()).ok());

  // A brand-new male user: no CF signal, gets group hot items.
  auto recs = (*engine)->query().Recommend(999, Male(), 2, Seconds(100));
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_TRUE((*recs)[0].item == 101 || (*recs)[0].item == 102);
}

TEST(EngineTest, ResultFilterApplies) {
  TencentRec::Options options = BaseOptions("filtered");
  options.app.result_filter = [](ItemId item) { return item != 102; };
  auto engine = TencentRec::Create(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->ProcessBatch(CliqueTraffic()).ok());
  auto recs = (*engine)->query().Recommend(50, Male(), 5, Seconds(100));
  ASSERT_TRUE(recs.ok());
  for (const auto& r : *recs) EXPECT_NE(r.item, 102);
}

TEST(EngineTest, TdAccessPathDeliversSameData) {
  auto engine = TencentRec::Create(BaseOptions("viaaccess"));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->PublishActions(CliqueTraffic()).ok());
  ASSERT_TRUE((*engine)->ProcessFromAccess().ok());

  auto recs = (*engine)->query().RecommendCf(50, 3, Seconds(100));
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].item, 102);

  // A second drain with no new messages is a no-op.
  ASSERT_TRUE((*engine)->ProcessFromAccess().ok());
  // New messages published later are picked up from the committed offsets.
  ASSERT_TRUE(
      (*engine)
          ->PublishActions({Act(7, 101, ActionType::kClick, Seconds(200)),
                            Act(7, 103, ActionType::kClick, Seconds(201))})
          .ok());
  ASSERT_TRUE((*engine)->ProcessFromAccess().ok());
  auto pc = (*engine)->query().WindowPairCount(101, 103, Seconds(300));
  ASSERT_TRUE(pc.ok());
  EXPECT_GT(*pc, 0.0);
}

TEST(EngineTest, ContentBasedViaCatalog) {
  TencentRec::Options options = BaseOptions("news");
  options.app.algorithms.content_based = true;
  auto engine = TencentRec::Create(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RegisterItem(1, {{100, 1.0}}, 0).ok());
  ASSERT_TRUE((*engine)->RegisterItem(2, {{100, 1.0}}, 0).ok());
  ASSERT_TRUE((*engine)->RegisterItem(3, {{200, 1.0}}, 0).ok());

  ASSERT_TRUE(
      (*engine)
          ->ProcessBatch({Act(1, 1, ActionType::kRead, Seconds(10))})
          .ok());
  auto recs = (*engine)->query().RecommendCb(1, 5, Seconds(20));
  ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].item, 2);  // same topic, unseen
  for (const auto& r : *recs) EXPECT_NE(r.item, 1);
}

TEST(EngineTest, SituationalCtrQuery) {
  TencentRec::Options options = BaseOptions("ads");
  options.app.algorithms.ctr = true;
  auto engine = TencentRec::Create(options);
  ASSERT_TRUE(engine.ok());

  std::vector<UserAction> actions;
  for (int i = 0; i < 200; ++i) {
    actions.push_back(
        Act(1 + i % 10, 7, ActionType::kImpression, Seconds(i), Male()));
    if (i % 4 == 0) {
      actions.push_back(
          Act(1 + i % 10, 7, ActionType::kClick, Seconds(i), Male()));
    }
  }
  ASSERT_TRUE((*engine)->ProcessBatch(actions).ok());

  auto ctr = (*engine)->query().PredictCtr(7, Male(), Seconds(300));
  ASSERT_TRUE(ctr.ok());
  EXPECT_NEAR(*ctr, 0.25, 0.05);

  auto counts = (*engine)->query().SituationCounts(7, Male(), Seconds(300));
  ASSERT_TRUE(counts.ok());
  EXPECT_DOUBLE_EQ(counts->first, 200.0);
  EXPECT_DOUBLE_EQ(counts->second, 50.0);
}

TEST(EngineTest, AssociationRuleQuery) {
  auto engine = TencentRec::Create(BaseOptions("ar"));
  ASSERT_TRUE(engine.ok());
  std::vector<UserAction> actions;
  EventTime t = 0;
  // 4 users buy 201; 2 of them also buy 202.
  for (UserId u = 1; u <= 4; ++u) {
    actions.push_back(Act(u, 201, ActionType::kPurchase, t += Seconds(1)));
  }
  for (UserId u = 1; u <= 2; ++u) {
    actions.push_back(Act(u, 202, ActionType::kPurchase, t += Seconds(1)));
  }
  ASSERT_TRUE((*engine)->ProcessBatch(actions).ok());
  auto rules = (*engine)->query().RecommendAr(201, 5, Seconds(100),
                                              /*min_support=*/1.0,
                                              /*min_confidence=*/0.01);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());
  EXPECT_EQ((*rules)[0].item, 202);
}

TEST(EngineTest, MaterializedResults) {
  TencentRec::Options options = BaseOptions("materialized");
  options.materialize_results = true;
  auto engine = TencentRec::Create(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->ProcessBatch(CliqueTraffic()).ok());
  // Touch user 50 again: the storage layer recomputes on activity, reading
  // counts that are durable by now (the statistics path is decoupled, so a
  // user's very last event of a batch may materialize on their next touch).
  ASSERT_TRUE(
      (*engine)
          ->ProcessBatch({Act(50, 101, ActionType::kBrowse, Seconds(90),
                              Male())})
          .ok());
  // The storage layer materialized a list for the active user.
  auto recs = (*engine)->query().MaterializedResults(50);
  ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].item, 102);
  // An untouched user has no materialized list.
  auto none = (*engine)->query().MaterializedResults(777);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(EngineTest, SlidingWindowStateExpires) {
  TencentRec::Options options = BaseOptions("windowed");
  options.app.session_length = Hours(1);
  options.app.window_sessions = 2;
  options.app.linked_time = Hours(1);
  auto engine = TencentRec::Create(options);
  ASSERT_TRUE(engine.ok());

  std::vector<UserAction> actions;
  EventTime t = 0;
  for (UserId u = 1; u <= 4; ++u) {
    actions.push_back(Act(u, 101, ActionType::kClick, t += Seconds(5)));
    actions.push_back(Act(u, 102, ActionType::kClick, t += Seconds(5)));
  }
  ASSERT_TRUE((*engine)->ProcessBatch(actions).ok());
  auto fresh = (*engine)->query().SimilarityFromCounts(101, 102, Minutes(10));
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, 0.0);
  // Hours later the window has moved on: counts read as zero.
  auto stale = (*engine)->query().SimilarityFromCounts(101, 102, Hours(10));
  ASSERT_TRUE(stale.ok());
  EXPECT_DOUBLE_EQ(*stale, 0.0);
}

TEST(EngineTest, WindowedHotListsFollowTheTrend) {
  TencentRec::Options options = BaseOptions("hotwindow");
  options.app.session_length = Hours(1);
  options.app.window_sessions = 2;
  options.app.linked_time = Hours(1);
  auto engine = TencentRec::Create(options);
  ASSERT_TRUE(engine.ok());

  // Hour 0: item 7 is hot among males; hours 5-6: item 9 takes over.
  std::vector<UserAction> actions;
  for (UserId u = 1; u <= 6; ++u) {
    actions.push_back(Act(u, 7, ActionType::kClick,
                          Minutes(static_cast<int64_t>(u)), Male()));
  }
  for (UserId u = 1; u <= 3; ++u) {
    actions.push_back(Act(u, 9, ActionType::kClick,
                          Hours(5) + Minutes(static_cast<int64_t>(u)),
                          Male()));
  }
  ASSERT_TRUE((*engine)->ProcessBatch(actions).ok());

  auto hot = (*engine)->query().HotItems(core::DemographicGroup(Male()), 3,
                                         Hours(5) + Minutes(30));
  ASSERT_TRUE(hot.ok());
  ASSERT_FALSE(hot->empty());
  // Item 7's sessions expired from the 2-hour window: item 9 leads and 7's
  // live popularity is zero even if a stale list entry lingers.
  EXPECT_EQ((*hot)[0].item, 9);
  auto pop7 = (*engine)->query().WindowItemCount(7, Hours(6));
  // (WindowItemCount covers CF counts; the DB counter check goes through
  // the hot list ordering above.)
  ASSERT_TRUE(pop7.ok());
}

TEST(EngineTest, DistributedPruningActivatesAndServes) {
  TencentRec::Options options = BaseOptions("pruned");
  options.app.enable_pruning = true;
  options.app.hoeffding_delta = 0.3;
  options.app.top_k = 2;  // small lists so thresholds rise quickly
  auto engine = TencentRec::Create(options);
  ASSERT_TRUE(engine.ok());

  // Two strong cliques plus a persistently weak cross pair, repeated long
  // enough for both items' lists to fill and the Hoeffding bound to fire.
  std::vector<UserAction> actions;
  EventTime t = 0;
  for (int round = 0; round < 60; ++round) {
    UserId u = 1000 + round;
    for (ItemId i : {1, 2, 3}) {
      actions.push_back(Act(u, i, ActionType::kPurchase, t += Seconds(1)));
    }
    UserId v = 5000 + round;
    for (ItemId i : {99, 98, 97}) {
      actions.push_back(Act(v, i, ActionType::kPurchase, t += Seconds(1)));
    }
    if (round % 3 == 0) {
      UserId z = 9000 + round;
      actions.push_back(Act(z, 99, ActionType::kBrowse, t += Seconds(1)));
      actions.push_back(Act(z, 1, ActionType::kBrowse, t += Seconds(1)));
    }
  }
  ASSERT_TRUE((*engine)->ProcessBatch(actions).ok());

  // Within the main batch the pruning check races benignly with the §5.1
  // statistics/computation decoupling: a pair task can drain its whole
  // queue before the ItemCountBolt combiner ever flushes, so its sims
  // compute against itemCounts of 0 and the similar lists (and hence the
  // K-th-score admission thresholds) end the batch durably depressed.
  // Activation inside one batch is therefore timing-dependent — under
  // `ctest -j` load it sometimes doesn't happen at all. The decoupling's
  // own contract is "the next touch of this pair refreshes it", so each
  // settle batch below re-touches BOTH cliques once (recomputing the
  // strong sims against the now-durable window sums, which restores the
  // thresholds to ~0.95) and adds a few more weak (1,99) co-ratings. By
  // the second settle batch the weak observations evaluate the Hoeffding
  // bound against recovered thresholds: epsilon ~ 0.15 at n ~ 25
  // observations (delta = 0.3) vs t - sim ~ 0.95 - 0.15, so pruning must
  // fire. The loop bound is slack, not a retry-until-lucky.
  tdstore::Client client((*engine)->store());
  auto count_flags = [&client] {
    int64_t flags = 0;
    (void)client.ScanPrefix("pr:pruned:",
                            [&](std::string_view, std::string_view) {
                              ++flags;
                              return true;
                            });
    return flags;
  };
  int64_t pruned_flags = count_flags();
  for (int settle = 0; settle < 20 && pruned_flags == 0; ++settle) {
    std::vector<UserAction> batch;
    UserId u = 20000 + settle;
    for (ItemId i : {1, 2, 3}) {
      batch.push_back(Act(u, i, ActionType::kPurchase, t += Seconds(1)));
    }
    UserId v = 30000 + settle;
    for (ItemId i : {99, 98, 97}) {
      batch.push_back(Act(v, i, ActionType::kPurchase, t += Seconds(1)));
    }
    for (int round = 0; round < 4; ++round) {
      UserId z = 40000 + settle * 100 + round;
      batch.push_back(Act(z, 99, ActionType::kBrowse, t += Seconds(1)));
      batch.push_back(Act(z, 1, ActionType::kBrowse, t += Seconds(1)));
    }
    ASSERT_TRUE((*engine)->ProcessBatch(batch).ok());
    pruned_flags = count_flags();
  }
  EXPECT_GT(pruned_flags, 0);

  // Serving still works: user 9000 touched items 99 and 1, so the strong
  // partners of both cliques are candidates (users 1000+ rated their whole
  // clique, leaving themselves nothing new).
  auto recs = (*engine)->query().RecommendCf(9000, 4, t + Seconds(10));
  ASSERT_TRUE(recs.ok());
  EXPECT_FALSE(recs->empty());
}

TEST(EngineTest, PipelineOnDurableEngines) {
  // The same pipeline with every TDStore instance on the FDB engine
  // (durable, file-backed) instead of MDB — the paper's engines are
  // interchangeable behind the instance API.
  TencentRec::Options options = BaseOptions("durable");
  options.store.engine.type = tdstore::EngineType::kFdb;
  const std::string prefix =
      ::testing::TempDir() + "engine_fdb_" + std::to_string(::getpid());
  options.store.engine.fdb_path = prefix;
  auto engine = TencentRec::Create(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->ProcessBatch(CliqueTraffic()).ok());
  auto recs = (*engine)->query().RecommendCf(50, 3, Seconds(100));
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].item, 102);
  // Cleanup the instance files.
  for (const auto& entry : std::filesystem::directory_iterator(
           ::testing::TempDir())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("engine_fdb_", 0) == 0) {
      std::filesystem::remove(entry.path());
    }
  }
}

TEST(EngineTest, ParallelSpoutsSplitTopicPartitions) {
  TencentRec::Options options = BaseOptions("parspout");
  options.topic_partitions = 4;
  options.spout_parallelism = 2;  // two consumer-group members
  auto engine = TencentRec::Create(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->PublishActions(CliqueTraffic()).ok());
  ASSERT_TRUE((*engine)->ProcessFromAccess().ok());

  // Both spout instances pulled data and the pipeline saw every action.
  for (const auto& m : (*engine)->last_metrics()) {
    if (m.component == "spout") {
      EXPECT_EQ(m.tuples_emitted, CliqueTraffic().size());
    }
    if (m.component == "pretreatment") {
      EXPECT_EQ(m.tuples_executed, CliqueTraffic().size());
    }
  }
  auto recs = (*engine)->query().RecommendCf(50, 3, Seconds(100));
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].item, 102);
}

TEST(EngineTest, ParallelCfMirrorMatchesReference) {
  TencentRec::Options options = BaseOptions("mirrored");
  options.mirror_parallel_cf = true;
  auto engine = TencentRec::Create(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->ProcessBatch(CliqueTraffic()).ok());

  core::ParallelItemCf* mirror = (*engine)->parallel_cf();
  ASSERT_NE(mirror, nullptr);

  // The mirror ran the identical algorithm configuration over the identical
  // batch, so its drained state matches a serial reference exactly.
  core::PracticalItemCf::Options ref_opts;
  ref_opts.weights = options.app.weights;
  ref_opts.linked_time = options.app.linked_time;
  ref_opts.top_k = options.app.top_k;
  ref_opts.recent_k = options.app.recent_k;
  ref_opts.session_length = options.app.session_length;
  ref_opts.window_sessions = options.app.window_sessions;
  ref_opts.enable_pruning = options.app.enable_pruning;
  ref_opts.hoeffding_delta = options.app.hoeffding_delta;
  core::PracticalItemCf reference(ref_opts);
  for (const auto& a : CliqueTraffic()) reference.ProcessAction(a);

  EXPECT_NEAR(mirror->Similarity(101, 102), reference.Similarity(101, 102),
              1e-12);
  EXPECT_GT(mirror->Similarity(101, 102), 0.0);
  auto recs = mirror->RecommendForUser(50, 3);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 102);  // same answer as the store path

  // The mirror's stage counters surface through the monitor snapshot.
  auto snapshot = CollectMonitorSnapshot(engine->get());
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->pipeline.size(), 2u);
  EXPECT_EQ(snapshot->pipeline[0].stage, "user-history");
  EXPECT_EQ(snapshot->pipeline[0].events, CliqueTraffic().size());
  EXPECT_GT(snapshot->pipeline[0].workers, 0);
  EXPECT_EQ(snapshot->pipeline[1].stage, "count+sim");
  const std::string report = FormatMonitorSnapshot(*snapshot);
  EXPECT_NE(report.find("parallel cf pipeline"), std::string::npos);
  EXPECT_NE(report.find("user-history"), std::string::npos);
}

TEST(EngineTest, MirrorCheckpointExportsStateThroughBatchWriter) {
  TencentRec::Options options = BaseOptions("ckpt");
  options.mirror_parallel_cf = true;
  options.mirror_checkpoint = true;
  auto engine = TencentRec::Create(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->ProcessBatch(CliqueTraffic()).ok());

  core::ParallelItemCf* mirror = (*engine)->parallel_cf();
  ASSERT_NE(mirror, nullptr);
  tdstore::Client client((*engine)->store());
  const topo::Keys& keys = (*engine)->app().keys;

  // Every tracked item's windowed total landed in the store under the
  // mirror key schema, value-identical to the live mirror state.
  int visited = 0;
  mirror->VisitItemCounts([&](core::ItemId item, double total) {
    ++visited;
    auto stored = client.GetDouble(keys.MirrorItemCount(item), -1.0);
    ASSERT_TRUE(stored.ok()) << item;
    EXPECT_DOUBLE_EQ(*stored, total) << item;
  });
  EXPECT_GT(visited, 0);

  // So did the similar-items lists — decodable and matching the live top-K.
  auto blob = client.Get(keys.MirrorSimilar(101));
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  auto list = topo::DecodeScoredList(*blob);
  ASSERT_TRUE(list.ok());
  const TopK<core::ItemId>* live = mirror->SimilarItems(101);
  ASSERT_NE(live, nullptr);
  ASSERT_EQ(list->size(), live->entries().size());
  EXPECT_EQ((*list)[0].item, 102);
  EXPECT_DOUBLE_EQ((*list)[0].score, live->entries()[0].score);
}

}  // namespace
}  // namespace tencentrec::engine
