#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>

#include "tstorm/cluster.h"
#include "tstorm/topology.h"

namespace tencentrec::tstorm {
namespace {

/// Emits integers [0, n) on a stream with fields {key, value}.
class IntSpout : public ISpout {
 public:
  explicit IntSpout(int n, int num_keys = 8) : n_(n), num_keys_(num_keys) {}

  std::vector<StreamDecl> DeclareOutputs() const override {
    return {{"ints", {"key", "value"}}};
  }

  void Open(const TaskContext& ctx) override {
    next_ = ctx.instance;
    stride_ = ctx.parallelism;
  }

  bool NextBatch(OutputCollector& out) override {
    int emitted = 0;
    while (next_ < n_ && emitted < 16) {
      out.Emit(Tuple::Of({static_cast<int64_t>(next_ % num_keys_),
                          static_cast<int64_t>(next_)}));
      next_ += stride_;
      ++emitted;
    }
    return next_ < n_;
  }

 private:
  int n_;
  int num_keys_;
  int next_ = 0;
  int stride_ = 1;
};

/// Collects everything it sees into a shared sink (guarded; instances run on
/// different threads).
struct Sink {
  std::mutex mu;
  std::vector<std::pair<int, Tuple>> tuples;  // (instance, tuple)
  std::map<int64_t, int> key_to_instance;
  bool key_instance_conflict = false;
};

class CollectBolt : public IBolt {
 public:
  explicit CollectBolt(Sink* sink) : sink_(sink) {}

  void Prepare(const TaskContext& ctx) override { instance_ = ctx.instance; }

  void Execute(const Tuple& input, const TupleSource& source,
               OutputCollector& out) override {
    (void)source;
    (void)out;
    std::lock_guard lock(sink_->mu);
    sink_->tuples.emplace_back(instance_, input);
    const int64_t key = input.GetInt(0);
    auto [it, inserted] = sink_->key_to_instance.emplace(key, instance_);
    if (!inserted && it->second != instance_) {
      sink_->key_instance_conflict = true;
    }
  }

 private:
  Sink* sink_;
  int instance_ = 0;
};

TopologySpec MustBuild(TopologyBuilder&& builder) {
  auto spec = std::move(builder).Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

// --- builder validation -----------------------------------------------------

TEST(TopologyBuilderTest, RejectsEmpty) {
  TopologyBuilder b("empty");
  auto spec = std::move(b).Build();
  EXPECT_FALSE(spec.ok());
}

TEST(TopologyBuilderTest, RejectsDuplicateNames) {
  Sink sink;
  TopologyBuilder b("dup");
  b.SetSpout("x", [] { return std::make_unique<IntSpout>(1); });
  b.SetBolt("x", [&sink] { return std::make_unique<CollectBolt>(&sink); })
      .ShuffleGrouping("x");
  auto spec = std::move(b).Build();
  EXPECT_FALSE(spec.ok());
}

TEST(TopologyBuilderTest, RejectsUnknownProducer) {
  Sink sink;
  TopologyBuilder b("bad");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(1); });
  b.SetBolt("bolt", [&sink] { return std::make_unique<CollectBolt>(&sink); })
      .ShuffleGrouping("nope");
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(TopologyBuilderTest, RejectsFieldsGroupingWithoutFields) {
  Sink sink;
  TopologyBuilder b("bad");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(1); });
  b.SetBolt("bolt", [&sink] { return std::make_unique<CollectBolt>(&sink); })
      .FieldsGrouping("spout", {});
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(LocalClusterTest, RejectsBoltWithNoInputs) {
  Sink sink;
  TopologyBuilder b("orphan");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(1); });
  b.SetBolt("bolt", [&sink] { return std::make_unique<CollectBolt>(&sink); });
  auto spec = std::move(b).Build();
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(LocalCluster::Create(std::move(spec).value()).ok());
}

TEST(LocalClusterTest, RejectsUnknownFieldName) {
  Sink sink;
  TopologyBuilder b("badfield");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(1); });
  b.SetBolt("bolt", [&sink] { return std::make_unique<CollectBolt>(&sink); })
      .FieldsGrouping("spout", {"nonexistent"});
  auto spec = std::move(b).Build();
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(LocalCluster::Create(std::move(spec).value()).ok());
}

// --- delivery ---------------------------------------------------------------

TEST(LocalClusterTest, DeliversAllTuplesShuffle) {
  Sink sink;
  TopologyBuilder b("shuffle");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(100); });
  b.SetBolt("bolt", [&sink] { return std::make_unique<CollectBolt>(&sink); },
            3)
      .ShuffleGrouping("spout");
  auto cluster = LocalCluster::Create(MustBuild(std::move(b)));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Run().ok());
  EXPECT_EQ(sink.tuples.size(), 100u);

  // All values present exactly once.
  std::set<int64_t> values;
  for (const auto& [inst, tuple] : sink.tuples) values.insert(tuple.GetInt(1));
  EXPECT_EQ(values.size(), 100u);

  // Shuffle spreads across instances.
  std::set<int> instances;
  for (const auto& [inst, tuple] : sink.tuples) instances.insert(inst);
  EXPECT_EQ(instances.size(), 3u);
}

TEST(LocalClusterTest, FieldsGroupingSerializesPerKey) {
  // The invariant the paper's CF correctness rests on: one instance per key.
  Sink sink;
  TopologyBuilder b("fields");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(500, 16); }, 2);
  b.SetBolt("bolt", [&sink] { return std::make_unique<CollectBolt>(&sink); },
            4)
      .FieldsGrouping("spout", {"key"});
  auto cluster = LocalCluster::Create(MustBuild(std::move(b)));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Run().ok());
  EXPECT_EQ(sink.tuples.size(), 500u);
  EXPECT_FALSE(sink.key_instance_conflict)
      << "same key observed on two instances";
}

TEST(LocalClusterTest, GlobalGroupingUsesOneInstance) {
  Sink sink;
  TopologyBuilder b("global");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(50); });
  b.SetBolt("bolt", [&sink] { return std::make_unique<CollectBolt>(&sink); },
            4)
      .GlobalGrouping("spout");
  auto cluster = LocalCluster::Create(MustBuild(std::move(b)));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Run().ok());
  std::set<int> instances;
  for (const auto& [inst, tuple] : sink.tuples) instances.insert(inst);
  EXPECT_EQ(instances.size(), 1u);
  EXPECT_EQ(sink.tuples.size(), 50u);
}

TEST(LocalClusterTest, AllGroupingBroadcasts) {
  Sink sink;
  TopologyBuilder b("all");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(50); });
  b.SetBolt("bolt", [&sink] { return std::make_unique<CollectBolt>(&sink); },
            3)
      .AllGrouping("spout");
  auto cluster = LocalCluster::Create(MustBuild(std::move(b)));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Run().ok());
  EXPECT_EQ(sink.tuples.size(), 150u);  // 50 x 3 instances
}

// --- multi-stage / multi-stream ---------------------------------------------

/// Splits ints into "even"/"odd" streams.
class SplitBolt : public IBolt {
 public:
  std::vector<StreamDecl> DeclareOutputs() const override {
    return {{"even", {"value"}}, {"odd", {"value"}}};
  }
  void Execute(const Tuple& input, const TupleSource& source,
               OutputCollector& out) override {
    (void)source;
    const int64_t v = input.GetInt(1);
    out.EmitTo(v % 2 == 0 ? 0 : 1, Tuple::Of({v}));
  }
};

TEST(LocalClusterTest, NamedStreamsRouteIndependently) {
  Sink evens, odds;
  TopologyBuilder b("split");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(100); });
  b.SetBolt("split", [] { return std::make_unique<SplitBolt>(); }, 2)
      .ShuffleGrouping("spout");
  b.SetBolt("evens",
            [&evens] { return std::make_unique<CollectBolt>(&evens); })
      .ShuffleGrouping("split", "even");
  b.SetBolt("odds", [&odds] { return std::make_unique<CollectBolt>(&odds); })
      .ShuffleGrouping("split", "odd");
  auto cluster = LocalCluster::Create(MustBuild(std::move(b)));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Run().ok());
  EXPECT_EQ(evens.tuples.size(), 50u);
  EXPECT_EQ(odds.tuples.size(), 50u);
  for (const auto& [inst, t] : evens.tuples) EXPECT_EQ(t.GetInt(0) % 2, 0);
  for (const auto& [inst, t] : odds.tuples) EXPECT_EQ(t.GetInt(0) % 2, 1);
}

// --- tick / flush -----------------------------------------------------------

/// Buffers sums and only emits on Tick — like a combiner.
class BufferingBolt : public IBolt {
 public:
  std::vector<StreamDecl> DeclareOutputs() const override {
    return {{"sums", {"key", "sum"}}};
  }
  void Execute(const Tuple& input, const TupleSource& source,
               OutputCollector& out) override {
    (void)source;
    (void)out;
    buffer_[input.GetInt(0)] += input.GetInt(1);
  }
  void Tick(OutputCollector& out) override {
    for (const auto& [key, sum] : buffer_) {
      out.Emit(Tuple::Of({key, sum}));
    }
    buffer_.clear();
  }

 private:
  std::map<int64_t, int64_t> buffer_;
};

TEST(LocalClusterTest, FinalTickFlushesBeforeEos) {
  // Even with tick_interval 0, the guaranteed pre-EOS tick must flush.
  Sink sink;
  TopologyBuilder b("tick");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(64, 4); });
  b.SetBolt("buffer", [] { return std::make_unique<BufferingBolt>(); })
      .FieldsGrouping("spout", {"key"});
  b.SetBolt("collect",
            [&sink] { return std::make_unique<CollectBolt>(&sink); })
      .ShuffleGrouping("buffer", "sums");
  auto cluster = LocalCluster::Create(MustBuild(std::move(b)));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Run().ok());

  int64_t total = 0;
  for (const auto& [inst, t] : sink.tuples) total += t.GetInt(1);
  EXPECT_EQ(total, 64 * 63 / 2);  // sum of 0..63, nothing lost in buffers
}

TEST(LocalClusterTest, PeriodicTickFires) {
  Sink sink;
  TopologyBuilder b("tick2");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(100, 1); });
  b.SetBolt("buffer", [] { return std::make_unique<BufferingBolt>(); })
      .FieldsGrouping("spout", {"key"})
      .TickInterval(10);
  b.SetBolt("collect",
            [&sink] { return std::make_unique<CollectBolt>(&sink); })
      .ShuffleGrouping("buffer", "sums");
  auto cluster = LocalCluster::Create(MustBuild(std::move(b)));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Run().ok());
  // ~10 periodic flushes (plus the final one); at least several emissions.
  EXPECT_GE(sink.tuples.size(), 5u);
  int64_t total = 0;
  for (const auto& [inst, t] : sink.tuples) total += t.GetInt(1);
  EXPECT_EQ(total, 100 * 99 / 2);
}

// --- metrics & restart ------------------------------------------------------

TEST(LocalClusterTest, MetricsCountExecutions) {
  Sink sink;
  TopologyBuilder b("metrics");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(200); });
  b.SetBolt("bolt", [&sink] { return std::make_unique<CollectBolt>(&sink); },
            2)
      .ShuffleGrouping("spout");
  auto cluster = LocalCluster::Create(MustBuild(std::move(b)));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Run().ok());
  for (const auto& m : (*cluster)->Metrics()) {
    if (m.component == "spout") {
      EXPECT_EQ(m.tuples_emitted, 200u);
    }
    if (m.component == "bolt") {
      EXPECT_EQ(m.tuples_executed, 200u);
    }
  }
}

/// Counts in-memory; restart loses the count (stateful on purpose, to prove
/// the restart really recreates the instance).
class StatefulBolt : public IBolt {
 public:
  explicit StatefulBolt(std::atomic<int>* prepares) : prepares_(prepares) {}
  void Prepare(const TaskContext& ctx) override {
    (void)ctx;
    prepares_->fetch_add(1);
  }
  void Execute(const Tuple& input, const TupleSource& source,
               OutputCollector& out) override {
    (void)input;
    (void)source;
    (void)out;
  }

 private:
  std::atomic<int>* prepares_;
};

TEST(LocalClusterTest, RestartRecreatesBoltInstances) {
  std::atomic<int> prepares{0};
  TopologyBuilder b("restart");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(5000); });
  b.SetBolt("bolt",
            [&prepares] { return std::make_unique<StatefulBolt>(&prepares); },
            2)
      .ShuffleGrouping("spout");
  auto cluster = LocalCluster::Create(MustBuild(std::move(b)));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->RequestRestart("bolt").ok());
  ASSERT_TRUE((*cluster)->Run().ok());
  EXPECT_EQ(prepares.load(), 4);  // 2 initial + 2 restarts
  uint64_t restarts = 0;
  for (const auto& m : (*cluster)->Metrics()) {
    if (m.component == "bolt") restarts = m.restarts;
  }
  EXPECT_EQ(restarts, 2u);
}

TEST(LocalClusterTest, RestartOfSpoutRejected) {
  TopologyBuilder b("nospout");
  std::atomic<int> prepares{0};
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(5); });
  b.SetBolt("bolt",
            [&prepares] { return std::make_unique<StatefulBolt>(&prepares); })
      .ShuffleGrouping("spout");
  auto cluster = LocalCluster::Create(MustBuild(std::move(b)));
  ASSERT_TRUE(cluster.ok());
  EXPECT_FALSE((*cluster)->RequestRestart("spout").ok());
  EXPECT_FALSE((*cluster)->RequestRestart("ghost").ok());
  ASSERT_TRUE((*cluster)->Run().ok());
}

TEST(LocalClusterTest, TinyQueuesBackpressureWithoutLoss) {
  // Queue capacity 2 forces constant blocking between stages; every tuple
  // must still arrive exactly once.
  Sink sink;
  TopologyBuilder b("pressure");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(2000, 16); }, 2);
  b.SetBolt("mid", [] { return std::make_unique<SplitBolt>(); }, 2)
      .ShuffleGrouping("spout");
  b.SetBolt("sink", [&sink] { return std::make_unique<CollectBolt>(&sink); })
      .ShuffleGrouping("mid", "even")
      .ShuffleGrouping("mid", "odd");
  auto spec = std::move(b).Build();
  ASSERT_TRUE(spec.ok());
  LocalCluster::Options options;
  options.queue_capacity = 2;
  auto cluster = LocalCluster::Create(std::move(spec).value(), options);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Run().ok());
  EXPECT_EQ(sink.tuples.size(), 2000u);
}

TEST(LocalClusterTest, MultipleSpoutsMergeIntoOneBolt) {
  Sink sink;
  TopologyBuilder b("twosources");
  b.SetSpout("a", [] { return std::make_unique<IntSpout>(40); });
  b.SetSpout("b", [] { return std::make_unique<IntSpout>(60); });
  b.SetBolt("sink", [&sink] { return std::make_unique<CollectBolt>(&sink); },
            2)
      .ShuffleGrouping("a")
      .ShuffleGrouping("b");
  auto cluster = LocalCluster::Create(MustBuild(std::move(b)));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Run().ok());
  EXPECT_EQ(sink.tuples.size(), 100u);  // EOS waited for both sources
}

TEST(TopologySpecTest, ToDotRendersComponentsAndEdges) {
  Sink sink;
  TopologyBuilder b("dot-demo");
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(1); }, 2);
  b.SetBolt("bolt", [&sink] { return std::make_unique<CollectBolt>(&sink); },
            3)
      .FieldsGrouping("spout", {"key"});
  auto spec = MustBuild(std::move(b));
  const std::string dot = ToDot(spec);
  EXPECT_NE(dot.find("digraph \"dot-demo\""), std::string::npos);
  EXPECT_NE(dot.find("\"spout\" [label=\"spout\\nx2\", shape=diamond]"),
            std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("\"spout\" -> \"bolt\""), std::string::npos);
  EXPECT_NE(dot.find("fields(key)"), std::string::npos);
}

TEST(LocalClusterTest, RunTwiceFails) {
  TopologyBuilder b("once");
  std::atomic<int> prepares{0};
  b.SetSpout("spout", [] { return std::make_unique<IntSpout>(5); });
  b.SetBolt("bolt",
            [&prepares] { return std::make_unique<StatefulBolt>(&prepares); })
      .ShuffleGrouping("spout");
  auto cluster = LocalCluster::Create(MustBuild(std::move(b)));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->Run().ok());
  EXPECT_FALSE((*cluster)->Run().ok());
}

}  // namespace
}  // namespace tencentrec::tstorm
