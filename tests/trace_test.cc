// Sampled per-tuple tracing (common/trace.h): edge sampling, the striped
// span ring, scoped spans and trace context, and the two JSON exports.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace tencentrec {
namespace {

/// Every test leaves the process-wide sampling rate off and the default
/// tracer empty, so suites sharing the binary stay independent.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    SetTraceSampleEvery(0);
    Tracer::Default().Clear();
  }
  void TearDown() override {
    SetTraceSampleEvery(0);
    Tracer::Default().Clear();
  }
};

TEST_F(TraceTest, SamplingDisabledReturnsZero) {
  EXPECT_FALSE(TracingEnabled());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(MaybeStartTrace(), 0u);
}

TEST_F(TraceTest, SamplesExactlyOneInN) {
  SetTraceSampleEvery(4);
  // The window length is a multiple of the period, so the hit count is
  // exact regardless of the global counter's phase.
  int sampled = 0;
  std::set<uint64_t> ids;
  for (int i = 0; i < 400; ++i) {
    const uint64_t id = MaybeStartTrace();
    if (id != 0) {
      ++sampled;
      ids.insert(id);
    }
  }
  EXPECT_EQ(sampled, 100);
  EXPECT_EQ(ids.size(), 100u);  // ids are unique
}

TEST_F(TraceTest, SampleEveryOneTracesEverything) {
  SetTraceSampleEvery(1);
  for (int i = 0; i < 16; ++i) EXPECT_NE(MaybeStartTrace(), 0u);
}

TEST_F(TraceTest, ScopedSpanRecordsAndPublishesContext) {
  SetTraceSampleEvery(1);
  EXPECT_EQ(CurrentTraceId(), 0u);
  {
    ScopedSpan span(42, "stage-a");
    EXPECT_EQ(CurrentTraceId(), 42u);
    {
      ScopedSpan nested(43, "stage-b");
      EXPECT_EQ(CurrentTraceId(), 43u);
    }
    EXPECT_EQ(CurrentTraceId(), 42u);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);

  const auto spans = Tracer::Default().Spans();
  ASSERT_EQ(spans.size(), 2u);
  // Ordered by start time: outer opened first.
  EXPECT_STREQ(spans[0].name, "stage-a");
  EXPECT_EQ(spans[0].trace_id, 42u);
  EXPECT_STREQ(spans[1].name, "stage-b");
}

TEST_F(TraceTest, ScopedSpanInertWhenUntracedOrDisabled) {
  SetTraceSampleEvery(1);
  { ScopedSpan span(0, "untraced"); }
  SetTraceSampleEvery(0);
  { ScopedSpan span(7, "disabled"); }  // nonzero id but tracing off
  EXPECT_TRUE(Tracer::Default().Spans().empty());
}

TEST_F(TraceTest, TraceContextScopePublishesWithoutRecording) {
  SetTraceSampleEvery(1);
  {
    TraceContextScope ctx(99);
    EXPECT_EQ(CurrentTraceId(), 99u);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
  EXPECT_TRUE(Tracer::Default().Spans().empty());
}

TEST_F(TraceTest, LongNamesTruncateSafely) {
  SetTraceSampleEvery(1);
  const std::string longname(200, 'x');
  { ScopedSpan span(5, longname); }
  const auto spans = Tracer::Default().Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].name).size(),
            TraceSpan::kNameCapacity - 1);
}

TEST(TracerTest, RingOverwritesOldestBoundedByCapacity) {
  Tracer tracer(Tracer::Options{.capacity = 16});
  EXPECT_EQ(tracer.capacity(), 16u);
  for (uint64_t i = 1; i <= 100; ++i) tracer.Record(i, "hop", i, 1);
  EXPECT_EQ(tracer.total_recorded(), 100u);
  // One writer thread = one stripe, so the live window is capacity/stripes.
  const auto spans = tracer.Spans();
  EXPECT_LE(spans.size(), tracer.capacity());
  EXPECT_GT(spans.size(), 0u);
  // Everything still live is recent.
  for (const auto& s : spans) EXPECT_GT(s.trace_id, 90u);
}

TEST(TracerTest, RecordIgnoresUntracedAndClearDropsSpans) {
  Tracer tracer;
  tracer.Record(0, "never", 1, 1);
  EXPECT_EQ(tracer.total_recorded(), 0u);
  tracer.Record(1, "kept", 1, 1);
  EXPECT_EQ(tracer.Spans().size(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Spans().empty());
  EXPECT_EQ(tracer.total_recorded(), 1u);  // counter keeps accumulating
}

TEST(TracerTest, LastSpanNamedFindsMostRecent) {
  Tracer tracer;
  tracer.Record(1, "bolt-a", 100, 5);
  tracer.Record(2, "bolt-b", 200, 5);
  tracer.Record(3, "bolt-a", 300, 5);
  TraceSpan out;
  ASSERT_TRUE(tracer.LastSpanNamed("bolt-a", &out));
  EXPECT_EQ(out.start_micros, 300u);
  EXPECT_EQ(out.trace_id, 3u);
  EXPECT_FALSE(tracer.LastSpanNamed("bolt-c", &out));
}

TEST(TracerTest, ConcurrentRecordIsSafe) {
  // TSan workload (label: concurrent): writers on every stripe plus a
  // reader snapshotting mid-flight.
  Tracer tracer(Tracer::Options{.capacity = 1024});
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        tracer.Record(static_cast<uint64_t>(t) * kPerThread + i, "worker",
                      i, 1);
      }
    });
  }
  threads.emplace_back([&tracer] {
    for (int i = 0; i < 50; ++i) {
      (void)tracer.Spans();
      TraceSpan out;
      (void)tracer.LastSpanNamed("worker", &out);
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.total_recorded(), kThreads * kPerThread);
  EXPECT_LE(tracer.Spans().size(), tracer.capacity());
}

TEST(TraceExportTest, ChromeTraceShape) {
  std::vector<TraceSpan> spans(2);
  spans[0].trace_id = 0xabcd;
  spans[0].start_micros = 10;
  spans[0].duration_micros = 5;
  spans[0].SetName("spout");
  spans[1].trace_id = 0xabcd;
  spans[1].start_micros = 16;
  spans[1].duration_micros = 3;
  spans[1].SetName("tdstore.write");

  const std::string json = ExportChromeTrace(spans);
  // trace_event array format: a JSON array of "ph":"X" complete events
  // with microsecond ts/dur.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"spout\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
  EXPECT_NE(json.find("000000000000abcd"), std::string::npos);
  EXPECT_EQ(ExportChromeTrace({}), "[]");
}

TEST(TraceExportTest, TracesJsonGroupsByTraceId) {
  std::vector<TraceSpan> spans(3);
  spans[0].trace_id = 1;
  spans[0].start_micros = 10;
  spans[0].duration_micros = 2;
  spans[0].SetName("spout");
  spans[1].trace_id = 2;
  spans[1].start_micros = 20;
  spans[1].duration_micros = 2;
  spans[1].SetName("spout");
  spans[2].trace_id = 1;
  spans[2].start_micros = 12;
  spans[2].duration_micros = 4;
  spans[2].SetName("store");

  const std::string json = ExportTracesJson(spans);
  EXPECT_NE(json.find("\"trace_count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"span_count\":3"), std::string::npos);
  // Trace 1 spans 10..16 -> total 6.
  EXPECT_NE(json.find("\"total_us\":6"), std::string::npos);
  // max_traces caps the output, most recent kept.
  const std::string capped = ExportTracesJson(spans, 1);
  EXPECT_NE(capped.find("\"trace_count\":1"), std::string::npos);
}

}  // namespace
}  // namespace tencentrec
