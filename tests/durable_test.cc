// Durable-state plane (DESIGN.md §14): SegmentLog torn-tail physics, the
// TDStore WAL, engine snapshots, cluster checkpoint/recovery, and the
// headline kill-mid-stream test — SIGKILL the process mid-batch, recover
// snapshot+WAL, replay the unfinished batches, and the store must be
// bit-identical to an uninterrupted run.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/recordio.h"
#include "engine/tencentrec.h"
#include "tdaccess/segment_log.h"
#include "tdstore/cluster.h"
#include "tdstore/data_server.h"
#include "tdstore/engine.h"
#include "tdstore/mdb_engine.h"
#include "tdstore/wal.h"
#include "topo/blob_codec.h"

namespace tencentrec {
namespace {

using core::ActionType;
using core::ItemId;
using core::UserAction;
using core::UserId;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("durable_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  static int counter_;
  std::filesystem::path path_;
};
int TempDir::counter_ = 0;

long FileSize(const std::string& path) {
  return static_cast<long>(std::filesystem::file_size(path));
}

void TruncateFile(const std::string& path, long bytes) {
  ASSERT_EQ(::truncate(path.c_str(), bytes), 0);
}

void CopyFile(const std::string& from, const std::string& to) {
  std::filesystem::copy_file(from, to,
                             std::filesystem::copy_options::overwrite_existing);
}

std::string RawBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void FlipByte(const std::string& path, long offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(offset);
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0xff);
  f.seekp(offset);
  f.write(&b, 1);
}

// ---------------------------------------------------------------------------
// SegmentLog: the torn-tail truncation must be physical.

tdaccess::Message Msg(const std::string& key, const std::string& payload,
                      EventTime ts = 0) {
  tdaccess::Message m;
  m.key = key;
  m.payload = payload;
  m.timestamp = ts;
  return m;
}

TEST(SegmentLogDurable, TornTailByteBoundarySweep) {
  TempDir dir;
  const std::string path = dir.path() + "/sweep.log";
  // Record where each record ends so the sweep knows the expected valid
  // prefix for every possible cut position.
  std::vector<long> ends;  // ends[i] = file size after record i
  {
    tdaccess::SegmentLog log;
    ASSERT_TRUE(log.Open(path, SyncPolicy::kFlushEveryAppend).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          log.Append(Msg("key" + std::to_string(i), "pay" + std::to_string(i),
                         i))
              .ok());
      ends.push_back(FileSize(path));
    }
  }
  const long full = ends.back();
  const long header = static_cast<long>(kLogHeaderSize);
  for (long cut = 0; cut <= full; ++cut) {
    const std::string torn = dir.path() + "/torn.log";
    CopyFile(path, torn);
    TruncateFile(torn, cut);

    size_t expect_records = 0;
    long expect_size = header;  // Open() writes a fresh header onto stubs
    for (size_t i = 0; i < ends.size(); ++i) {
      if (ends[i] <= cut) {
        expect_records = i + 1;
        expect_size = ends[i];
      }
    }

    tdaccess::SegmentLog log;
    ASSERT_TRUE(log.Open(torn).ok()) << "cut=" << cut;
    auto all = log.Read(0, 100);
    ASSERT_TRUE(all.ok()) << "cut=" << cut;
    EXPECT_EQ(all->size(), expect_records) << "cut=" << cut;
    for (size_t i = 0; i < all->size(); ++i) {
      EXPECT_EQ((*all)[i].key, "key" + std::to_string(i)) << "cut=" << cut;
    }
    ASSERT_TRUE(log.Close().ok());
    // The regression this PR fixes: the torn tail must be truncated OFF THE
    // DISK at Open — an fseek alone leaves stale bytes that can survive
    // open/close cycles and later mis-frame as a valid-looking record.
    EXPECT_EQ(FileSize(torn), expect_size) << "cut=" << cut;
  }
}

TEST(SegmentLogDurable, ShortAppendRollsBackToRecordBoundary) {
  TempDir dir;
  const std::string path = dir.path() + "/tail.log";
  tdaccess::SegmentLog log;
  ASSERT_TRUE(log.Open(path, SyncPolicy::kFlushEveryAppend).ok());
  ASSERT_TRUE(log.Append(Msg("a", "1")).ok());
  const long good = FileSize(path);
  ASSERT_TRUE(log.Append(Msg("b", "2")).ok());
  EXPECT_GT(FileSize(path), good);
  ASSERT_TRUE(log.Close().ok());
  // Reopen keeps both; the file ends exactly at the last record boundary.
  tdaccess::SegmentLog again;
  ASSERT_TRUE(again.Open(path).ok());
  auto all = again.Read(0, 10);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
}

TEST(SegmentLogDurable, HeaderIsExplicitLittleEndian) {
  TempDir dir;
  const std::string path = dir.path() + "/hdr.log";
  {
    tdaccess::SegmentLog log;
    ASSERT_TRUE(log.Open(path, SyncPolicy::kFlushEveryAppend).ok());
    ASSERT_TRUE(log.Append(Msg("k", "v", 7)).ok());
  }
  const std::string bytes = RawBytes(path);
  ASSERT_GE(bytes.size(), kLogHeaderSize);
  // "TDAL" magic, version 1 — byte-for-byte, independent of host endianness.
  EXPECT_EQ(bytes.substr(0, 4), "TDAL");
  EXPECT_EQ(GetFixed32LE(bytes.data() + 4), 1u);
  // First frame: [crc][len] then [u32 key_len][u32 payload_len][i64 ts].
  const char* frame = bytes.data() + kLogHeaderSize;
  EXPECT_EQ(GetFixed32LE(frame + 4), 16u + 1u + 1u);  // payload length
  EXPECT_EQ(GetFixed32LE(frame + 8), 1u);             // key_len
  EXPECT_EQ(GetFixed32LE(frame + 12), 1u);            // payload_len
  EXPECT_EQ(GetFixed64LE(frame + 16), 7u);            // timestamp
}

TEST(SegmentLogDurable, RefusesUnknownMagic) {
  TempDir dir;
  const std::string path = dir.path() + "/alien.log";
  { std::ofstream(path, std::ios::binary) << "NOTALOGFILE!"; }
  tdaccess::SegmentLog log;
  Status s = log.Open(path);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

// ---------------------------------------------------------------------------
// Wal: record codec, torn-tail sweep, barrier truncation, reset.

TEST(WalTest, RecordCodecRoundTrip) {
  tdstore::WalRecord rec;
  rec.instance_id = 42;
  rec.ops.push_back({false, "key", "value"});
  rec.ops.push_back({true, "gone", ""});
  auto decoded = tdstore::DecodeWalRecord(tdstore::EncodeWalRecord(rec));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, tdstore::WalRecord::Kind::kOps);
  EXPECT_EQ(decoded->instance_id, 42);
  ASSERT_EQ(decoded->ops.size(), 2u);
  EXPECT_EQ(decoded->ops[0].key, "key");
  EXPECT_EQ(decoded->ops[0].value, "value");
  EXPECT_FALSE(decoded->ops[0].is_delete);
  EXPECT_TRUE(decoded->ops[1].is_delete);

  tdstore::WalRecord barrier;
  barrier.kind = tdstore::WalRecord::Kind::kBarrier;
  barrier.barrier_id = 9;
  auto b = tdstore::DecodeWalRecord(tdstore::EncodeWalRecord(barrier));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->kind, tdstore::WalRecord::Kind::kBarrier);
  EXPECT_EQ(b->barrier_id, 9u);

  EXPECT_TRUE(tdstore::DecodeWalRecord("").status().IsCorruption());
  std::string torn = tdstore::EncodeWalRecord(rec);
  torn.resize(torn.size() - 3);
  EXPECT_TRUE(tdstore::DecodeWalRecord(torn).status().IsCorruption());
}

tdstore::WalRecord OpsRecord(int instance, const std::string& key,
                             const std::string& value) {
  tdstore::WalRecord rec;
  rec.instance_id = instance;
  rec.ops.push_back({false, key, value});
  return rec;
}

tdstore::WalRecord BarrierRecord(uint64_t id) {
  tdstore::WalRecord rec;
  rec.kind = tdstore::WalRecord::Kind::kBarrier;
  rec.barrier_id = id;
  return rec;
}

TEST(WalTest, TornTailByteBoundarySweep) {
  TempDir dir;
  const std::string path = dir.path() + "/sweep.wal";
  std::vector<long> ends;
  {
    tdstore::Wal wal;
    tdstore::Wal::Options opts;
    opts.sync = SyncPolicy::kFsyncEveryAppend;
    ASSERT_TRUE(wal.Open(path, opts).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          wal.Append(OpsRecord(i, "k" + std::to_string(i), "v")).ok());
      ends.push_back(FileSize(path));
    }
    ASSERT_TRUE(wal.Append(BarrierRecord(1)).ok());
    ends.push_back(FileSize(path));
  }
  const long full = ends.back();
  const long header = static_cast<long>(kLogHeaderSize);
  for (long cut = 0; cut <= full; ++cut) {
    const std::string torn = dir.path() + "/torn.wal";
    CopyFile(path, torn);
    TruncateFile(torn, cut);

    size_t expect_records = 0;
    long expect_size = header;
    for (size_t i = 0; i < ends.size(); ++i) {
      if (ends[i] <= cut) {
        expect_records = i + 1;
        expect_size = ends[i];
      }
    }

    tdstore::Wal wal;
    ASSERT_TRUE(wal.Open(torn, {}).ok()) << "cut=" << cut;
    EXPECT_EQ(wal.recovered().size(), expect_records) << "cut=" << cut;
    // The barrier only survives when its whole record does.
    EXPECT_EQ(wal.recovered_last_barrier(),
              expect_records == ends.size() ? 1u : 0u)
        << "cut=" << cut;
    ASSERT_TRUE(wal.Close().ok());
    EXPECT_EQ(FileSize(torn), expect_size) << "cut=" << cut;
  }
}

TEST(WalTest, TruncateToBarrierDropsUncommittedSuffix) {
  TempDir dir;
  const std::string path = dir.path() + "/barrier.wal";
  {
    tdstore::Wal wal;
    ASSERT_TRUE(wal.Open(path, {}).ok());
    ASSERT_TRUE(wal.Append(OpsRecord(0, "a", "1")).ok());
    ASSERT_TRUE(wal.Append(BarrierRecord(1)).ok());
    ASSERT_TRUE(wal.Append(OpsRecord(0, "b", "2")).ok());
    ASSERT_TRUE(wal.Append(BarrierRecord(2)).ok());
    ASSERT_TRUE(wal.Append(OpsRecord(0, "c", "3")).ok());  // uncommitted
  }
  {
    tdstore::Wal wal;
    ASSERT_TRUE(wal.Open(path, {}).ok());
    EXPECT_EQ(wal.recovered().size(), 5u);
    EXPECT_EQ(wal.recovered_last_barrier(), 2u);
    EXPECT_TRUE(wal.TruncateToBarrier(3).IsNotFound());
    ASSERT_TRUE(wal.TruncateToBarrier(2).ok());
    EXPECT_EQ(wal.recovered().size(), 4u);  // "c" gone
  }
  // The truncation was physical: a fresh open agrees.
  tdstore::Wal again;
  ASSERT_TRUE(again.Open(path, {}).ok());
  EXPECT_EQ(again.recovered().size(), 4u);
  EXPECT_EQ(again.recovered_last_barrier(), 2u);
  // Barrier 0 = nothing committed: back to the bare header.
  ASSERT_TRUE(again.TruncateToBarrier(0).ok());
  ASSERT_TRUE(again.Close().ok());
  EXPECT_EQ(FileSize(path), static_cast<long>(kLogHeaderSize));
}

TEST(WalTest, ResetDropsEverything) {
  TempDir dir;
  const std::string path = dir.path() + "/reset.wal";
  tdstore::Wal wal;
  ASSERT_TRUE(wal.Open(path, {}).ok());
  ASSERT_TRUE(wal.Append(OpsRecord(0, "a", "1")).ok());
  ASSERT_TRUE(wal.Reset().ok());
  EXPECT_EQ(wal.record_count(), 0u);
  // And the log keeps working after the rename swap.
  ASSERT_TRUE(wal.Append(OpsRecord(0, "b", "2")).ok());
  ASSERT_TRUE(wal.Close().ok());
  tdstore::Wal again;
  ASSERT_TRUE(again.Open(path, {}).ok());
  ASSERT_EQ(again.recovered().size(), 1u);
  EXPECT_EQ(again.recovered()[0].ops[0].key, "b");
}

TEST(WalTest, HeaderIsExplicitLittleEndian) {
  TempDir dir;
  const std::string path = dir.path() + "/hdr.wal";
  {
    tdstore::Wal wal;
    ASSERT_TRUE(wal.Open(path, {}).ok());
  }
  const std::string bytes = RawBytes(path);
  ASSERT_EQ(bytes.size(), kLogHeaderSize);
  EXPECT_EQ(bytes.substr(0, 4), "TDWL");
  EXPECT_EQ(GetFixed32LE(bytes.data() + 4), 1u);
}

// ---------------------------------------------------------------------------
// Engine snapshots.

TEST(SnapshotTest, MdbRoundTrip) {
  TempDir dir;
  const std::string snap = dir.path() + "/mdb.snap";
  tdstore::MdbEngine src;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        src.Put("key" + std::to_string(i), "value" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(src.SnapshotTo(snap).ok());

  tdstore::MdbEngine dst;
  ASSERT_TRUE(dst.Put("stale", "gone").ok());  // restore must replace, not merge
  ASSERT_TRUE(dst.RestoreFrom(snap).ok());
  EXPECT_EQ(dst.Count(), 200u);
  EXPECT_TRUE(dst.Get("stale").status().IsNotFound());
  for (int i = 0; i < 200; ++i) {
    auto v = dst.Get("key" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, "value" + std::to_string(i));
  }
}

TEST(SnapshotTest, GenericEngineRoundTrip) {
  TempDir dir;
  const std::string snap = dir.path() + "/ldb.snap";
  tdstore::EngineOptions opts;
  opts.type = tdstore::EngineType::kLdb;
  auto src = tdstore::CreateEngine(opts);
  ASSERT_TRUE(src.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*src)->Put("k" + std::to_string(i), std::to_string(i)).ok());
  }
  ASSERT_TRUE((*src)->Delete("k7").ok());  // tombstones must not leak through
  ASSERT_TRUE((*src)->SnapshotTo(snap).ok());

  auto dst = tdstore::CreateEngine(opts);
  ASSERT_TRUE(dst.ok());
  ASSERT_TRUE((*dst)->RestoreFrom(snap).ok());
  EXPECT_EQ((*dst)->Count(), 99u);
  EXPECT_TRUE((*dst)->Get("k7").status().IsNotFound());
  auto v = (*dst)->Get("k42");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "42");
}

TEST(SnapshotTest, DetectsTornAndCorruptSnapshots) {
  TempDir dir;
  const std::string snap = dir.path() + "/t.snap";
  tdstore::MdbEngine src;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(src.Put("key" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(src.SnapshotTo(snap).ok());
  const long full = FileSize(snap);

  // Torn anywhere — including just the footer missing — is Corruption.
  for (long cut : {full - 1, full - 9, full / 2, long{9}}) {
    const std::string torn = dir.path() + "/torn.snap";
    CopyFile(snap, torn);
    TruncateFile(torn, cut);
    tdstore::MdbEngine dst;
    ASSERT_TRUE(dst.Put("keep", "me").ok());
    Status s = dst.RestoreFrom(torn);
    EXPECT_TRUE(s.IsCorruption()) << "cut=" << cut << " -> " << s.ToString();
    // A failed restore leaves the engine untouched.
    EXPECT_TRUE(dst.Get("keep").ok()) << "cut=" << cut;
  }

  // A flipped payload byte fails the frame crc.
  const std::string flipped = dir.path() + "/flip.snap";
  CopyFile(snap, flipped);
  FlipByte(flipped, full / 2);
  tdstore::MdbEngine dst;
  EXPECT_TRUE(dst.RestoreFrom(flipped).IsCorruption());

  EXPECT_TRUE(
      dst.RestoreFrom(dir.path() + "/missing.snap").IsNotFound());
}

// ---------------------------------------------------------------------------
// Cluster checkpoint + recovery.

tdstore::Cluster::Options DurableClusterOptions(const std::string& dir) {
  tdstore::Cluster::Options opts;
  opts.num_data_servers = 2;
  opts.num_instances = 4;
  opts.durability.enabled = true;
  opts.durability.dir = dir;
  return opts;
}

TEST(ClusterDurable, RecoversSnapshotPlusWalReplay) {
  TempDir dir;
  MetricRegistry::Default().Reset();
  {
    auto cluster = tdstore::Cluster::Create(DurableClusterOptions(dir.path()));
    ASSERT_TRUE(cluster.ok());
    // Instance i is hosted by server i % 2.
    ASSERT_TRUE((*cluster)->data_server(0)->Put(0, "pre", "snap").ok());
    ASSERT_TRUE((*cluster)->data_server(1)->Put(1, "pre1", "snap1").ok());
    ASSERT_TRUE((*cluster)->CommitBarrier(1).ok());
    ASSERT_TRUE((*cluster)->Checkpoint(1).ok());
    // Post-checkpoint traffic lives only in the WAL.
    ASSERT_TRUE((*cluster)->data_server(0)->Put(2, "post", "wal").ok());
    ASSERT_TRUE(
        (*cluster)->data_server(1)->IncrInt64(1, "count", 5).status().ok());
    ASSERT_TRUE((*cluster)->data_server(1)->Delete(1, "pre1").ok());
    ASSERT_TRUE((*cluster)->CommitBarrier(2).ok());
    // Uncommitted tail: no barrier after it — recovery must drop it.
    ASSERT_TRUE((*cluster)->data_server(0)->Put(0, "torn", "lost").ok());
  }
  auto recovered = tdstore::Cluster::Create(DurableClusterOptions(dir.path()));
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->recovered_barrier_id(), 2u);
  auto v = (*recovered)->data_server(0)->Get(0, "pre");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "snap");
  EXPECT_TRUE((*recovered)->data_server(0)->Get(2, "post").ok());
  auto count = (*recovered)->data_server(1)->IncrInt64(1, "count", 0);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 5);
  EXPECT_TRUE(
      (*recovered)->data_server(1)->Get(1, "pre1").status().IsNotFound());
  EXPECT_TRUE(
      (*recovered)->data_server(0)->Get(0, "torn").status().IsNotFound());
  // Recovery is visible in /vars: the counters moved.
  EXPECT_GT(
      MetricRegistry::Default().GetCounter("store.recovery.count")->Value(),
      0u);
  EXPECT_GT(MetricRegistry::Default()
                .GetCounter("store.recovery.replayed_records")
                ->Value(),
            0u);
  EXPECT_EQ(MetricRegistry::Default()
                .GetGauge("store.recovery.last_barrier")
                ->Value(),
            2);
  // Slaves were re-seeded from the recovered hosts: fail server 0 and its
  // instances keep serving from the promoted slaves.
  ASSERT_TRUE((*recovered)->FailDataServer(0).ok());
  auto promoted = (*recovered)->data_server(1)->Get(0, "pre");
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(*promoted, "snap");
}

TEST(ClusterDurable, RecoveryStopsAtMinimumSharedBarrier) {
  TempDir dir;
  {
    auto cluster = tdstore::Cluster::Create(DurableClusterOptions(dir.path()));
    ASSERT_TRUE(cluster.ok());
    ASSERT_TRUE((*cluster)->data_server(0)->Put(0, "both", "v0").ok());
    ASSERT_TRUE((*cluster)->data_server(1)->Put(1, "both1", "v1").ok());
    ASSERT_TRUE((*cluster)->CommitBarrier(1).ok());
    ASSERT_TRUE((*cluster)->data_server(0)->Put(0, "late", "v").ok());
    ASSERT_TRUE((*cluster)->data_server(1)->Put(1, "late1", "v").ok());
    // Barrier 2 reached only server 0's platter before the "crash": it is
    // NOT a consistent cut, because server 1's batch-2 ops have no barrier.
    ASSERT_TRUE((*cluster)->data_server(0)->AppendBarrier(2).ok());
  }
  auto recovered = tdstore::Cluster::Create(DurableClusterOptions(dir.path()));
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->recovered_barrier_id(), 1u);
  EXPECT_TRUE((*recovered)->data_server(0)->Get(0, "both").ok());
  EXPECT_TRUE((*recovered)->data_server(1)->Get(1, "both1").ok());
  // Batch 2 rolled back everywhere — including on the server that had
  // fsynced its barrier.
  EXPECT_TRUE(
      (*recovered)->data_server(0)->Get(0, "late").status().IsNotFound());
  EXPECT_TRUE(
      (*recovered)->data_server(1)->Get(1, "late1").status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Kill-mid-stream: the headline end-to-end crash test.

std::vector<UserAction> KillBatch(int b, int n) {
  Rng rng(static_cast<uint64_t>(7000 + b));
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase,
                               ActionType::kImpression};
  std::vector<UserAction> actions;
  for (int i = 0; i < n; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(20));
    a.item = static_cast<ItemId>(1 + rng.Uniform(15));
    a.action = kTypes[rng.Uniform(5)];
    a.timestamp = Seconds((b * n + i) * 3);
    actions.push_back(a);
  }
  return actions;
}

engine::TencentRec::Options KillEngineOptions(const std::string& durable_dir) {
  engine::TencentRec::Options options;
  options.app.app = "killtest";
  options.app.parallelism = 2;
  options.app.linked_time = Days(30);
  options.app.algorithms.ctr = true;
  options.store.num_data_servers = 2;
  options.store.num_instances = 8;
  if (!durable_dir.empty()) {
    options.store.durability.enabled = true;
    options.store.durability.dir = durable_dir;
    options.checkpoint_interval_batches = 4;  // exercise snapshot+truncate
  }
  return options;
}

/// Full host-side store content, keyed by instance.
std::map<std::string, std::string> DumpStore(tdstore::Cluster* store) {
  std::map<std::string, std::string> out;
  for (int s = 0; s < store->num_data_servers(); ++s) {
    tdstore::DataServer* server = store->data_server(s);
    for (int inst = 0; inst < store->num_instances(); ++inst) {
      // Only the host role serves the scan, so each instance lands once.
      (void)server->ScanPrefix(
          inst, "", [&](std::string_view key, std::string_view value) {
            out["i" + std::to_string(inst) + ":" + std::string(key)] =
                std::string(value);
            return true;
          });
    }
  }
  return out;
}

/// User-history blobs serialize an unordered_map, so byte order is not
/// canonical; compare the decoded logical content instead.
std::map<ItemId, std::pair<double, EventTime>> CanonicalHistory(
    const std::string& blob) {
  std::map<ItemId, std::pair<double, EventTime>> out;
  auto history = topo::DecodeUserHistory(blob);
  if (!history.ok()) return out;
  for (const auto& [item, state] : history->items()) {
    out[item] = {state.rating, state.last_action};
  }
  return out;
}

int ReadProgress(const std::string& path) {
  std::ifstream in(path);
  int v = 0;
  if (!(in >> v)) return 0;
  return v;
}

TEST(KillMidStream, RecoversBitIdenticalState) {
  TempDir dir;
  const std::string store_dir = dir.path() + "/store";
  const std::string progress = dir.path() + "/progress";
  std::filesystem::create_directories(store_dir);
  constexpr int kBatches = 12;
  constexpr int kPerBatch = 50;

  // Fork FIRST, before this process has ever spun up engine threads.
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: stream all batches against the durable store, reporting each
    // committed batch. The parent SIGKILLs us somewhere in the middle.
    auto engine = engine::TencentRec::Create(KillEngineOptions(store_dir));
    if (!engine.ok()) _exit(2);
    for (int b = 0; b < kBatches; ++b) {
      if (!(*engine)->ProcessBatch(KillBatch(b, kPerBatch)).ok()) _exit(3);
      const std::string tmp = progress + ".tmp";
      {
        std::ofstream out(tmp, std::ios::trunc);
        out << (b + 1);
      }
      std::rename(tmp.c_str(), progress.c_str());
    }
    _exit(0);
  }

  // Parent: wait for a few committed batches, then kill without warning.
  int committed = 0;
  bool child_exited = false;
  for (int spin = 0; spin < 30000; ++spin) {
    committed = ReadProgress(progress);
    if (committed >= 3) break;
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      child_exited = true;  // finished everything before we got to it
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!child_exited) {
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
  }
  ASSERT_GE(committed, child_exited ? 0 : 3);

  // Recover: boot from snapshot+WAL, learn how far the stream committed,
  // and replay the remainder of the batches.
  auto recovered = engine::TencentRec::Create(KillEngineOptions(store_dir));
  ASSERT_TRUE(recovered.ok());
  const uint64_t k = (*recovered)->store()->recovered_barrier_id();
  // A batch the child reported was barrier-committed before the report, so
  // recovery can never land short of it — only at it or later.
  EXPECT_GE(k, static_cast<uint64_t>(committed));
  ASSERT_LE(k, static_cast<uint64_t>(kBatches));
  for (int b = static_cast<int>(k); b < kBatches; ++b) {
    ASSERT_TRUE((*recovered)->ProcessBatch(KillBatch(b, kPerBatch)).ok());
  }
  EXPECT_EQ((*recovered)->last_barrier(), static_cast<uint64_t>(kBatches));
  const auto recovered_dump = DumpStore((*recovered)->store());

  // Reference: the same stream, never interrupted, no durability.
  auto reference = engine::TencentRec::Create(KillEngineOptions(""));
  ASSERT_TRUE(reference.ok());
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE((*reference)->ProcessBatch(KillBatch(b, kPerBatch)).ok());
  }
  const auto reference_dump = DumpStore((*reference)->store());

  ASSERT_FALSE(reference_dump.empty());
  // The key SET is deterministic: both runs touched the same state.
  {
    std::vector<std::string> ref_keys, rec_keys;
    for (const auto& [key, value] : reference_dump) ref_keys.push_back(key);
    for (const auto& [key, value] : recovered_dump) rec_keys.push_back(key);
    EXPECT_EQ(rec_keys, ref_keys);
  }
  // Value comparison splits by key class. Counters and windowed statistics
  // (ic:, pc:, po:, ctr:, gh:, ...) are deterministic functions of the
  // batch sequence and must match byte for byte — this is the issue's
  // "bit-identical counts" bar. Two classes are exempt, and provably so
  // even between two UNINTERRUPTED runs of the same stream:
  //   - uh: blobs serialize an unordered_map, so identical logical content
  //     can round-trip into different record orders; compared canonicalized.
  //   - sim:/st: hold scores computed at emission time from whatever the
  //     windowed counts were at that instant (§5.1 decoupled statistics —
  //     "transiently stale", self-correcting under traffic), so their bytes
  //     are interleaving-dependent by design; presence is checked above.
  int diffs = 0;
  std::string diff;
  for (const auto& [key, value] : reference_dump) {
    auto it = recovered_dump.find(key);
    if (it == recovered_dump.end()) continue;  // reported by the set check
    const std::string stripped = key.substr(key.find(':') + 1);
    bool equal;
    if (stripped.rfind("sim:", 0) == 0 || stripped.rfind("st:", 0) == 0) {
      continue;
    } else if (stripped.rfind("uh:", 0) == 0) {
      equal = CanonicalHistory(value) == CanonicalHistory(it->second);
    } else {
      equal = value == it->second;
    }
    if (!equal && diffs < 20) {
      diff += "  differs: " + key + "\n";
      ++diffs;
    }
  }
  EXPECT_EQ(diffs, 0)
      << "recovered store diverged from the uninterrupted run (committed="
      << committed << " k=" << k << "):\n"
      << diff;
}

}  // namespace
}  // namespace tencentrec
