#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/clock.h"
#include "common/crc32.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/queue.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/topk.h"

namespace tencentrec {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, EveryCodeHasName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimedOut), "TimedOut");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// --- strings ----------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingle) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ':'), "x:y:z");
  EXPECT_EQ(Split(Join(parts, ':'), ':'), parts);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64(" -45 ", &v));
  EXPECT_EQ(v, -45);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("1.5", &v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_FALSE(ParseDouble("1.5.2", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("ic:app:1", "ic:"));
  EXPECT_FALSE(StartsWith("ic", "ic:"));
}

// --- hash -------------------------------------------------------------------

// --- logging ----------------------------------------------------------------

TEST(LoggingTest, ParseLogLevelAcceptsNamesNumbersAndCase) {
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kError), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warning", LogLevel::kError), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn", LogLevel::kError), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kDebug), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("0", LogLevel::kError), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("3", LogLevel::kDebug), LogLevel::kError);
}

TEST(LoggingTest, ParseLogLevelFallsBackOnJunk) {
  EXPECT_EQ(ParseLogLevel(nullptr, LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("loud", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("7", LogLevel::kDebug), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("-1", LogLevel::kError), LogLevel::kError);
}

TEST(LoggingTest, SetLogLevelRoundTrips) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(saved);
}

TEST(HashTest, StableAcrossCalls) {
  EXPECT_EQ(HashString("hello"), HashString("hello"));
  EXPECT_NE(HashString("hello"), HashString("hellp"));
  // Pinned value: field groupings must be reproducible across runs/builds.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ULL);
}

TEST(HashTest, IntMixesSequentialKeys) {
  // Sequential ids must spread across partitions.
  std::set<uint64_t> buckets;
  for (uint64_t i = 0; i < 64; ++i) buckets.insert(HashInt(i) % 8);
  EXPECT_EQ(buckets.size(), 8u);
}

TEST(HashTest, CombineOrderSensitive) {
  EXPECT_NE(HashCombine(HashInt(1), HashInt(2)),
            HashCombine(HashInt(2), HashInt(1)));
}

// --- crc32 ------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, SeedChaining) {
  const std::string data = "hello world";
  uint32_t whole = Crc32(data);
  uint32_t chained = Crc32(data.substr(5), Crc32(data.substr(0, 5)));
  EXPECT_EQ(whole, chained);
}

TEST(Crc32Test, DetectsFlip) {
  std::string data = "some record payload";
  uint32_t before = Crc32(data);
  data[3] ^= 1;
  EXPECT_NE(before, Crc32(data));
}

// --- random -----------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(99), b(99), c(100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  bool differs = false;
  Rng a2(99);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliRoughFrequency) {
  Rng rng(2);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(ZipfTest, SkewsTowardHead) {
  Rng rng(3);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 100);  // far above uniform share
}

TEST(ZipfTest, ZeroSkewIsRoughlyUniform) {
  Rng rng(4);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

// --- clock ------------------------------------------------------------------

TEST(ClockTest, Conversions) {
  EXPECT_EQ(Seconds(2), 2'000'000);
  EXPECT_EQ(Minutes(1), Seconds(60));
  EXPECT_EQ(Hours(1), Minutes(60));
  EXPECT_EQ(Days(1), Hours(24));
  EXPECT_EQ(DayIndex(Days(3) + Hours(5)), 3);
}

TEST(ClockTest, LogicalClockMonotone) {
  LogicalClock clock(100);
  clock.AdvanceTo(50);  // no going back
  EXPECT_EQ(clock.now(), 100);
  clock.AdvanceTo(200);
  EXPECT_EQ(clock.now(), 200);
  clock.Advance(5);
  EXPECT_EQ(clock.now(), 205);
}

// --- TopK -------------------------------------------------------------------

TEST(TopKTest, KeepsBestK) {
  TopK<int> topk(3);
  for (int i = 1; i <= 10; ++i) topk.Update(i, i * 1.0);
  ASSERT_EQ(topk.size(), 3u);
  EXPECT_EQ(topk.entries()[0].id, 10);
  EXPECT_EQ(topk.entries()[1].id, 9);
  EXPECT_EQ(topk.entries()[2].id, 8);
  EXPECT_DOUBLE_EQ(topk.Threshold(), 8.0);
}

TEST(TopKTest, ThresholdZeroUntilFull) {
  TopK<int> topk(3);
  topk.Update(1, 5.0);
  topk.Update(2, 4.0);
  EXPECT_DOUBLE_EQ(topk.Threshold(), 0.0);
  topk.Update(3, 3.0);
  EXPECT_DOUBLE_EQ(topk.Threshold(), 3.0);
}

TEST(TopKTest, UpdateExistingEntryReorders) {
  TopK<int> topk(3);
  topk.Update(1, 1.0);
  topk.Update(2, 2.0);
  topk.Update(3, 3.0);
  topk.Update(1, 10.0);  // same id, new score
  EXPECT_EQ(topk.size(), 3u);
  EXPECT_EQ(topk.entries()[0].id, 1);
  EXPECT_TRUE(topk.Contains(2));
}

TEST(TopKTest, RejectsBelowThresholdWhenFull) {
  TopK<int> topk(2);
  topk.Update(1, 5.0);
  topk.Update(2, 4.0);
  EXPECT_FALSE(topk.Update(3, 1.0));
  EXPECT_FALSE(topk.Contains(3));
}

TEST(TopKTest, Erase) {
  TopK<int> topk(2);
  topk.Update(1, 5.0);
  topk.Update(2, 4.0);
  topk.Erase(1);
  EXPECT_FALSE(topk.Contains(1));
  EXPECT_EQ(topk.size(), 1u);
  EXPECT_DOUBLE_EQ(topk.Threshold(), 0.0);  // no longer full
}

// --- stats ------------------------------------------------------------------

TEST(StatsTest, RunningStatBasics) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 6.0}) stat.Add(x);
  EXPECT_EQ(stat.count(), 3);
  EXPECT_DOUBLE_EQ(stat.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 6.0);
  EXPECT_NEAR(stat.stddev(), 2.0, 1e-9);
}

TEST(StatsTest, EmptyStatIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.stddev(), 0.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 5.5);
}

TEST(StatsTest, PercentileSingleElementAndClamping) {
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 1.0), 42.0);
  // Out-of-range p clamps instead of reading past the data.
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0}, 1.5), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0}, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

TEST(StatsTest, MergeMatchesBulkAdd) {
  // Chan et al.'s parallel combine must agree with streaming all samples
  // through one accumulator.
  std::vector<double> xs;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.NextDouble() * 100.0 - 50.0);

  RunningStat bulk;
  for (double x : xs) bulk.Add(x);

  RunningStat a, b, c;
  for (size_t i = 0; i < xs.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Add(xs[i]);
  }
  RunningStat merged;
  merged.Merge(a);
  merged.Merge(b);
  merged.Merge(c);

  EXPECT_EQ(merged.count(), bulk.count());
  EXPECT_NEAR(merged.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), bulk.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.min(), bulk.min());
  EXPECT_DOUBLE_EQ(merged.max(), bulk.max());
}

TEST(StatsTest, MergeEmptySides) {
  RunningStat empty, filled;
  filled.Add(3.0);
  filled.Add(5.0);

  RunningStat lhs = filled;
  lhs.Merge(empty);  // no-op
  EXPECT_EQ(lhs.count(), 2);
  EXPECT_DOUBLE_EQ(lhs.mean(), 4.0);

  RunningStat rhs;
  rhs.Merge(filled);  // adopts the other side wholesale
  EXPECT_EQ(rhs.count(), 2);
  EXPECT_DOUBLE_EQ(rhs.mean(), 4.0);
  EXPECT_DOUBLE_EQ(rhs.min(), 3.0);
  EXPECT_DOUBLE_EQ(rhs.max(), 5.0);
}

// --- LatencyHistogram -------------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreConsistent) {
  using H = LatencyHistogram;
  // Values 0..3 get exact buckets.
  for (uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(H::BucketOf(v), static_cast<int>(v));
    EXPECT_EQ(H::BucketLowerBound(static_cast<int>(v)), v);
    EXPECT_EQ(H::BucketUpperBound(static_cast<int>(v)), v);
  }
  // Every bucket's bounds map back to that bucket, and buckets tile the
  // value axis without gaps.
  for (int b = 0; b < H::kNumBuckets - 1; ++b) {
    EXPECT_EQ(H::BucketOf(H::BucketLowerBound(b)), b) << "bucket " << b;
    EXPECT_EQ(H::BucketOf(H::BucketUpperBound(b)), b) << "bucket " << b;
    EXPECT_EQ(H::BucketUpperBound(b) + 1, H::BucketLowerBound(b + 1))
        << "gap after bucket " << b;
  }
  // Out-of-range observations clamp into the top bucket.
  EXPECT_EQ(H::BucketOf(UINT64_MAX), H::kNumBuckets - 1);
}

TEST(HistogramTest, PercentileAccuracyWithinBucketError) {
  SetMetricsEnabled(true);
  LatencyHistogram h;
  // Uniform 1..10000us: any quantile q maps to ~q*10000, and the log-linear
  // layout guarantees <=12.5% relative error plus interpolation.
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  auto snap = h.Snap();
  EXPECT_EQ(snap.count, 10000u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 10000u);
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double expected = q * 10000.0;
    EXPECT_NEAR(snap.Percentile(q), expected, expected * 0.130 + 1.0)
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 10000.0);
}

TEST(HistogramTest, SingleObservationPercentiles) {
  SetMetricsEnabled(true);
  LatencyHistogram h;
  h.Record(777);
  auto snap = h.Snap();
  EXPECT_EQ(snap.count, 1u);
  // Min/max clamping makes every quantile the exact observation.
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 777.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.99), 777.0);
}

TEST(HistogramTest, DisabledRecordsNothing) {
  SetMetricsEnabled(false);
  LatencyHistogram h;
  h.Record(100);
  EXPECT_EQ(h.Snap().count, 0u);
  SetMetricsEnabled(true);
}

// --- BoundedQueue -----------------------------------------------------------

TEST(QueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(QueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
}

TEST(QueueTest, CloseDrainsThenSignals) {
  BoundedQueue<int> q(10);
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(QueueTest, ProducerConsumerThreads) {
  BoundedQueue<int> q(4);  // small capacity forces backpressure
  constexpr int kItems = 2000;
  int64_t sum = 0;
  std::thread consumer([&] {
    while (auto v = q.Pop()) sum += *v;
  });
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) q.Push(i);
    q.Close();
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum, static_cast<int64_t>(kItems) * (kItems + 1) / 2);
}

}  // namespace
}  // namespace tencentrec
