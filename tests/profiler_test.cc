// Tests for the continuous profiling plane (DESIGN.md §13): the stage
// registry, folded-stack export, dladdr symbolization, per-stage sample
// attribution on a seeded ParallelItemCf run, start/stop/start signal
// safety (this file is part of the TSan `concurrent` workload), and
// ProfiledMutex wait accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/profiled_mutex.h"
#include "common/stage.h"
#include "core/itemcf/parallel_cf.h"
#include "obs/profiler.h"

namespace tencentrec {
namespace {

using obs::Profiler;

// A frame the symbolization test can look up: extern + noinline so the
// symbol survives optimization and (thanks to CMAKE_ENABLE_EXPORTS) lands
// in the dynamic symbol table dladdr searches.
extern "C" __attribute__((noinline)) int TrProfilerTestAnchor(int x) {
  // Volatile sink defeats whole-function folding.
  volatile int v = x * 2 + 1;
  return v;
}

core::UserAction MakeAction(core::UserId user, core::ItemId item,
                            EventTime ts) {
  core::UserAction a;
  a.user = user;
  a.item = item;
  a.action = core::ActionType::kClick;
  a.timestamp = ts;
  return a;
}

// Burns CPU through the seeded ParallelItemCf pipeline until the profiler
// has accumulated `min_samples` beyond `baseline` (or a generous timeout).
void DriveUntilSampled(core::ParallelItemCf* cf, uint64_t baseline,
                       uint64_t min_samples) {
  EventTime ts = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (Profiler::Instance().total_samples() - baseline < min_samples &&
         std::chrono::steady_clock::now() < deadline) {
    for (int u = 0; u < 64; ++u) {
      for (int i = 0; i < 8; ++i) {
        cf->ProcessAction(
            MakeAction(static_cast<core::UserId>(u % 17),
                       static_cast<core::ItemId>(1 + (u + i) % 23), ++ts));
      }
    }
    cf->Drain();
  }
}

TEST(StageRegistryTest, InternIsIdempotentAndNamed) {
  const uint16_t a = InternStage("stage-test.alpha");
  const uint16_t b = InternStage("stage-test.alpha");
  const uint16_t c = InternStage("stage-test.beta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, 0);
  EXPECT_EQ(StageName(a), "stage-test.alpha");
  EXPECT_EQ(StageName(0), "unregistered");
  EXPECT_EQ(StageName(9999), "unregistered");
}

TEST(StageRegistryTest, RegisterThreadPublishesStageAndSlot) {
  uint16_t seen_stage = 0;
  int seen_slot = -1;
  bool visited = false;
  std::thread worker([&] {
    const uint16_t id = RegisterStageThread("stage-test.worker");
    seen_stage = CurrentStage();
    seen_slot = CurrentStageSlot();
    EXPECT_EQ(id, seen_stage);
    VisitStageThreads([&](const StageThreadInfo& info) {
      if (info.stage == id) visited = true;
    });
  });
  worker.join();
  EXPECT_EQ(StageName(seen_stage), "stage-test.worker");
  EXPECT_GE(seen_slot, 0);
  EXPECT_TRUE(visited);
  // The slot was released on thread exit: nobody carries the stage now.
  bool still_there = false;
  VisitStageThreads([&](const StageThreadInfo& info) {
    if (info.stage == seen_stage) still_there = true;
  });
  EXPECT_FALSE(still_there);
}

TEST(ProfilerTest, FoldedStackRoundTrip) {
  // Hand-built aggregate: the folded exporter must emit root-first
  // semicolon-joined frames with the stage as the synthetic root and the
  // count last — the exact shape flamegraph.pl consumes.
  Profiler::Aggregate agg;
  Profiler::StackSample s;
  s.stage = InternStage("folded-test.stage");
  // Innermost-first, as the handler captures: anchor called from main.
  s.pcs = {reinterpret_cast<uintptr_t>(&TrProfilerTestAnchor) + 4};
  s.count = 42;
  agg.total = 42;
  agg.stacks.push_back(s);

  const std::string folded = Profiler::Folded(agg);
  ASSERT_FALSE(folded.empty());

  // One line, "<root>;<frame> <count>\n".
  std::istringstream lines(folded);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const size_t space = line.rfind(' ');
  ASSERT_NE(space, std::string::npos);
  EXPECT_EQ(line.substr(space + 1), "42");
  const std::string frames = line.substr(0, space);
  ASSERT_EQ(frames.rfind("folded-test.stage;", 0), 0u);
  EXPECT_NE(frames.find("TrProfilerTestAnchor"), std::string::npos);
  // Nothing else follows.
  EXPECT_FALSE(std::getline(lines, line));
}

TEST(ProfilerTest, SymbolizesKnownLocalFrame) {
  // +4: past the function's first byte, the way a sampled pc or return
  // address lands mid-function; SymbolizePc backs up one byte itself.
  const std::string sym = Profiler::SymbolizePc(
      reinterpret_cast<uintptr_t>(&TrProfilerTestAnchor) + 4);
  EXPECT_NE(sym.find("TrProfilerTestAnchor"), std::string::npos) << sym;
  // Unknown addresses render as hex rather than failing.
  const std::string unknown = Profiler::SymbolizePc(0x1234);
  EXPECT_EQ(unknown.rfind("0x", 0), 0u) << unknown;
}

TEST(ProfilerTest, AttributesSamplesToRegisteredStages) {
  RegisterStageThread("profiler-test.driver");
  core::ParallelItemCf::Options opts;
  opts.user_shards = 2;
  opts.pair_shards = 2;
  opts.metrics_scope = "proftest";
  core::ParallelItemCf cf(opts);

  Profiler& prof = Profiler::Instance();
  Profiler::Options popts;
  popts.hz = 997;  // dense sampling keeps this test fast on one core
  ASSERT_TRUE(prof.Enabled());
  ASSERT_TRUE(prof.Start(popts));

  const uint64_t base_total = prof.total_samples();
  const uint64_t base_unattributed = prof.stage_samples(0);
  DriveUntilSampled(&cf, base_total, 200);
  prof.Stop();

  const uint64_t total = prof.total_samples() - base_total;
  const uint64_t unattributed = prof.stage_samples(0) - base_unattributed;
  ASSERT_GE(total, 200u) << "profiler produced too few samples";
  // ISSUE 8 acceptance: >=90% of samples attributed to registered stages.
  // Timers only ever attach to registered threads, so in practice this is
  // ~100%; the bound guards the attribution plumbing end to end.
  EXPECT_LE(unattributed * 10, total)
      << "unattributed " << unattributed << " of " << total;

  // The pipeline stages must show up by their registered names.
  const uint16_t user_stage = InternStage("proftest.user-history");
  const uint16_t pair_stage = InternStage("proftest.count+sim");
  EXPECT_GT(prof.stage_samples(user_stage) + prof.stage_samples(pair_stage),
            0u);

  cf.Shutdown();
}

TEST(ProfilerTest, CollectWindowProducesFoldedStacks) {
  RegisterStageThread("profiler-test.driver");
  core::ParallelItemCf::Options opts;
  opts.user_shards = 2;
  opts.pair_shards = 2;
  opts.metrics_scope = "profwin";
  core::ParallelItemCf cf(opts);

  Profiler& prof = Profiler::Instance();
  Profiler::Options popts;
  popts.hz = 997;
  ASSERT_TRUE(prof.Start(popts));

  // Keep the pipeline busy in the background while a window is collected.
  std::atomic<bool> stop{false};
  std::thread load([&] {
    RegisterStageThread("profiler-test.load");
    EventTime ts = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int u = 0; u < 64; ++u) {
        cf.ProcessAction(MakeAction(static_cast<core::UserId>(u % 13),
                                    static_cast<core::ItemId>(1 + u % 31),
                                    ++ts));
      }
      cf.Drain();
    }
  });

  const Profiler::Aggregate agg = prof.CollectWindow(1.0);
  stop.store(true, std::memory_order_relaxed);
  load.join();
  prof.Stop();
  cf.Shutdown();

  ASSERT_GT(agg.total, 0u);
  ASSERT_FALSE(agg.stacks.empty());
  const std::string folded = Profiler::Folded(agg);
  // Every line carries >=1 frame and a positive trailing count.
  std::istringstream lines(folded);
  std::string line;
  size_t n_lines = 0;
  uint64_t count_sum = 0;
  while (std::getline(lines, line)) {
    ++n_lines;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    count_sum += std::stoull(line.substr(space + 1));
    EXPECT_FALSE(line.substr(0, space).empty());
  }
  EXPECT_EQ(n_lines, agg.stacks.size());
  EXPECT_EQ(count_sum, agg.total);
  // JSON rollup agrees on the total.
  const std::string json = Profiler::Json(agg);
  EXPECT_NE(json.find("\"total_samples\":"), std::string::npos);
  EXPECT_NE(json.find("\"stages\":["), std::string::npos);
}

TEST(ProfilerTest, StartStopStartIsSignalSafe) {
  // Exercises the stop/start races TSan + the late-signal hazard: timers
  // deleted while signals may be in flight, handler gated by the running
  // flag, new timers re-armed on live threads. Runs under the `concurrent`
  // label, so the TSan build checks the handler/collector rings too.
  RegisterStageThread("profiler-test.driver");
  core::ParallelItemCf::Options opts;
  opts.user_shards = 2;
  opts.pair_shards = 2;
  opts.metrics_scope = "profcycle";
  core::ParallelItemCf cf(opts);

  Profiler& prof = Profiler::Instance();
  Profiler::Options popts;
  popts.hz = 997;
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(prof.Start(popts));
    EXPECT_TRUE(prof.running());
    EXPECT_FALSE(prof.Start(popts));  // double-start refused
    const uint64_t base = prof.total_samples();
    DriveUntilSampled(&cf, base, 20);
    prof.Stop();
    EXPECT_FALSE(prof.running());
    // A few more actions after stop: late signals must be inert.
    EventTime ts = 1000000 + cycle;
    for (int u = 0; u < 32; ++u) {
      cf.ProcessAction(MakeAction(static_cast<core::UserId>(u),
                                  static_cast<core::ItemId>(1 + u), ++ts));
    }
    cf.Drain();
  }
  cf.Shutdown();

  // Kill switch: disabled profiler refuses to start.
  prof.SetEnabled(false);
  EXPECT_FALSE(prof.Start(popts));
  prof.SetEnabled(true);
}

TEST(ProfiledMutexTest, CountsUncontendedAcquisitions) {
  SetContentionProfilingEnabled(true);
  ProfiledMutex mu("mutex-test.uncontended");
  ContentionSite* site = RegisterContentionSite("mutex-test.uncontended");
  const uint64_t base = site->acquisitions();
  for (int i = 0; i < 10; ++i) {
    std::lock_guard<ProfiledMutex> lock(mu);
  }
  EXPECT_EQ(site->acquisitions() - base, 10u);
  EXPECT_EQ(site->contended(), 0u);
  EXPECT_EQ(site->wait_us_total(), 0u);
}

TEST(ProfiledMutexTest, RecordsWaitAndHolderStage) {
  SetContentionProfilingEnabled(true);
  ProfiledMutex mu("mutex-test.contended");
  ContentionSite* site = RegisterContentionSite("mutex-test.contended");

  std::atomic<bool> held{false};
  std::thread holder([&] {
    RegisterStageThread("mutex-test.holder");
    std::lock_guard<ProfiledMutex> lock(mu);
    held.store(true, std::memory_order_release);
    // Hold long enough that the waiter measurably blocks.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  });
  while (!held.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  {
    // Contended acquisition on this thread; blame goes to the holder stage.
    std::lock_guard<ProfiledMutex> lock(mu);
  }
  holder.join();

  const uint16_t holder_stage = InternStage("mutex-test.holder");
  EXPECT_GE(site->contended(), 1u);
  EXPECT_GT(site->wait_us_total(), 0u);
  EXPECT_GT(site->wait_us_max(), 0u);
  EXPECT_GT(site->wait_us_by_holder(holder_stage), 0u);
  ASSERT_NE(site->wait_hist(), nullptr);
  EXPECT_GE(site->wait_hist()->Snap().count, 1u);

  // The JSON rollup names the site and the blamed stage.
  const std::string json = ContentionReportJson();
  EXPECT_NE(json.find("\"mutex-test.contended\""), std::string::npos);
  EXPECT_NE(json.find("mutex-test.holder"), std::string::npos);
}

TEST(ProfiledMutexTest, DisabledModeSkipsAccounting) {
  SetContentionProfilingEnabled(false);
  ProfiledMutex mu("mutex-test.disabled");
  ContentionSite* site = RegisterContentionSite("mutex-test.disabled");
  {
    std::lock_guard<ProfiledMutex> lock(mu);
  }
  EXPECT_EQ(site->acquisitions(), 0u);
  SetContentionProfilingEnabled(true);
}

}  // namespace
}  // namespace tencentrec
