// Cross-implementation parity: the distributed topology (bolts over
// TDStore) must agree with the single-process core algorithms on the same
// action stream — for every algorithm path, not just CF counts.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "core/ctr.h"
#include "core/demographic.h"
#include "core/itemcf/item_cf.h"
#include "engine/tencentrec.h"

namespace tencentrec {
namespace {

using core::ActionType;
using core::Demographics;
using core::ItemId;
using core::UserAction;
using core::UserId;

std::vector<UserAction> DemographicStream(uint64_t seed, int n) {
  Rng rng(seed);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase,
                               ActionType::kImpression};
  std::vector<UserAction> actions;
  for (int i = 0; i < n; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(20));
    a.item = static_cast<ItemId>(1 + rng.Uniform(15));
    a.action = kTypes[rng.Uniform(5)];
    a.timestamp = Seconds(i * 3);
    if (rng.Bernoulli(0.8)) {
      a.demographics.gender = rng.Bernoulli(0.5) ? Demographics::kMale
                                                 : Demographics::kFemale;
      a.demographics.age_band = static_cast<uint8_t>(rng.UniformInt(1, 4));
      if (rng.Bernoulli(0.5)) {
        a.demographics.region = static_cast<uint16_t>(rng.UniformInt(1, 3));
      }
    }
    actions.push_back(a);
  }
  return actions;
}

engine::TencentRec::Options EngineOptions(const std::string& app) {
  engine::TencentRec::Options options;
  options.app.app = app;
  options.app.parallelism = 2;
  options.app.linked_time = Days(30);
  options.app.algorithms.ctr = true;
  options.app.combiner_interval = 16;
  options.store.num_data_servers = 2;
  options.store.num_instances = 8;
  return options;
}

class ParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParityTest, DemographicHotnessMatchesCore) {
  const auto actions = DemographicStream(GetParam(), 500);

  auto engine = engine::TencentRec::Create(EngineOptions("dbparity"));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->ProcessBatch(actions).ok());

  core::DemographicRecommender::Options db_options;
  db_options.window_sessions = 0;
  core::DemographicRecommender reference(db_options);
  for (const auto& a : actions) reference.ProcessAction(a);

  // For each demographic group seen in the stream, the topology's hot list
  // ordering must match the core model's (same windowed popularity sums).
  std::set<core::GroupId> groups = {0};
  for (const auto& a : actions) {
    groups.insert(core::DemographicGroup(a.demographics));
  }
  const EventTime now = Seconds(500 * 3 + 10);
  for (core::GroupId group : groups) {
    auto topo_hot = (*engine)->query().HotItems(group, 5, now);
    ASSERT_TRUE(topo_hot.ok());
    auto core_hot = reference.HotItems(group, 5);
    ASSERT_EQ(topo_hot->size(), core_hot.size()) << "group " << group;
    for (size_t i = 0; i < core_hot.size(); ++i) {
      EXPECT_EQ((*topo_hot)[i].item, core_hot[i].item)
          << "group " << group << " rank " << i;
      EXPECT_NEAR((*topo_hot)[i].score, core_hot[i].score, 1e-9);
    }
  }
}

TEST_P(ParityTest, SituationalCtrMatchesCore) {
  const auto actions = DemographicStream(GetParam() + 1000, 600);

  auto engine = engine::TencentRec::Create(EngineOptions("ctrparity"));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->ProcessBatch(actions).ok());

  core::SituationalCtr::Options ctr_options;
  ctr_options.window_sessions = 0;
  ctr_options.prior_strength = 20.0;
  ctr_options.base_ctr = 0.02;
  core::SituationalCtr reference(ctr_options);
  for (const auto& a : actions) reference.ProcessAction(a);

  const EventTime now = Seconds(600 * 3 + 10);
  Rng rng(GetParam());
  for (int probe = 0; probe < 30; ++probe) {
    const auto item = static_cast<ItemId>(1 + rng.Uniform(15));
    Demographics d;
    d.gender = rng.Bernoulli(0.5) ? Demographics::kMale
                                  : Demographics::kFemale;
    d.age_band = static_cast<uint8_t>(rng.UniformInt(0, 4));
    d.region = static_cast<uint16_t>(rng.UniformInt(0, 3));

    auto topo_ctr = (*engine)->query().PredictCtr(item, d, now);
    ASSERT_TRUE(topo_ctr.ok());
    EXPECT_NEAR(*topo_ctr, reference.PredictCtr(item, d), 1e-9)
        << "item " << item;

    auto topo_counts = (*engine)->query().SituationCounts(item, d, now);
    ASSERT_TRUE(topo_counts.ok());
    auto core_counts = reference.SituationCounts(item, d);
    EXPECT_DOUBLE_EQ(topo_counts->first, core_counts.impressions);
    EXPECT_DOUBLE_EQ(topo_counts->second, core_counts.clicks);
  }
}

TEST_P(ParityTest, UserHistoriesMatchCore) {
  const auto actions = DemographicStream(GetParam() + 2000, 400);

  auto engine = engine::TencentRec::Create(EngineOptions("uhparity"));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->ProcessBatch(actions).ok());

  core::PracticalItemCf::Options cf_options;
  cf_options.linked_time = Days(30);
  core::PracticalItemCf reference(cf_options);
  for (const auto& a : actions) reference.ProcessAction(a);

  const EventTime now = Seconds(400 * 3 + 10);
  for (UserId user = 1; user <= 20; ++user) {
    auto topo_recs = (*engine)->query().RecommendCf(user, 5, now);
    ASSERT_TRUE(topo_recs.ok());
    auto core_recent = reference.RecentItemsOf(user);
    // Both sides agree on whether the user exists and on their recent set
    // being non-empty (full list equality is checked via counts parity in
    // topo_test; here we sanity-check the serving path end to end).
    if (core_recent.empty()) {
      EXPECT_TRUE(topo_recs->empty());
    }
    for (const auto& rec : *topo_recs) {
      // Never recommend something the user already rated.
      EXPECT_DOUBLE_EQ(reference.UserRating(user, rec.item), 0.0)
          << "user " << user << " item " << rec.item;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParityTest, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace tencentrec
