// Flat-vs-legacy kernel parity (DESIGN.md §15). The rewrite swapped the CF
// state containers (std::unordered_map/set -> open-addressing flat tables)
// and the TopK maintenance kernel (sort-per-update -> single-pass sift);
// neither may change any observable output. These tests drive both kernels
// with identical traces and assert bit-identical results. Exactness is
// legitimate: action weights are dyadic rationals (multiples of 0.5), so
// every count is an exact float sum, identical in any accumulation order.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/arena.h"
#include "common/flat_map.h"
#include "common/random.h"
#include "common/topk.h"
#include "core/itemcf/item_cf.h"
#include "core/itemcf/pair_key.h"
#include "core/itemcf/parallel_cf.h"

namespace tencentrec::core {
namespace {

// --- flat table units --------------------------------------------------------

TEST(FlatMap64Test, UpsertFindGrow) {
  FlatMap64<double> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);

  // Push through several doublings; every key must stay reachable.
  const int n = 1000;
  for (int i = 0; i < n; ++i) map[static_cast<uint64_t>(i)] += i * 0.5;
  EXPECT_EQ(map.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double* v = map.Find(static_cast<uint64_t>(i));
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i * 0.5);
  }
  EXPECT_EQ(map.Find(static_cast<uint64_t>(n)), nullptr);

  // operator[] on an existing key must not duplicate.
  map[3] += 1.0;
  EXPECT_EQ(map.size(), static_cast<size_t>(n));
  EXPECT_EQ(*map.Find(3), 3 * 0.5 + 1.0);
}

TEST(FlatMap64Test, ClearKeepsCapacityAndReserve) {
  FlatMap64<uint32_t> map;
  map.Reserve(100);
  const size_t cap = map.capacity();
  EXPECT_GE(cap * 3, 100 * 4u);  // sized for 100 at 3/4 load
  for (uint64_t k = 0; k < 100; ++k) map[k] = static_cast<uint32_t>(k);
  EXPECT_EQ(map.capacity(), cap);  // no rehash churn after Reserve
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.Find(5), nullptr);
  map[5] = 9;
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap64Test, ForEachVisitsEveryEntryOnce) {
  FlatMap64<double> map;
  for (uint64_t k = 1; k <= 50; ++k) map[k * 977] = static_cast<double>(k);
  double sum = 0.0;
  size_t visits = 0;
  map.ForEach([&](uint64_t, double v) {
    sum += v;
    ++visits;
  });
  EXPECT_EQ(visits, 50u);
  EXPECT_EQ(sum, 50.0 * 51.0 / 2.0);
}

TEST(FlatSet64Test, InsertContainsClear) {
  FlatSet64 set;
  EXPECT_FALSE(set.Contains(1));
  EXPECT_TRUE(set.Insert(1));
  EXPECT_FALSE(set.Insert(1));  // duplicate
  for (uint64_t k = 2; k < 500; ++k) EXPECT_TRUE(set.Insert(k * k));
  EXPECT_EQ(set.size(), 499u);
  for (uint64_t k = 2; k < 500; ++k) EXPECT_TRUE(set.Contains(k * k));
  EXPECT_FALSE(set.Contains(3));
  set.Clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.Contains(1));
}

TEST(PairKeyTest, PackIsCanonicalAndSentinelFree) {
  // Packing is order-insensitive (canonical lo/hi) and lo < hi guarantees
  // the packed key never equals the flat tables' ~0 sentinel.
  EXPECT_EQ(PackPair(3, 9), PackPair(9, 3));
  EXPECT_EQ(PackPair(3, 9), (uint64_t{3} << 32) | 9);
  EXPECT_NE(PackPair(static_cast<ItemId>(0xfffffffe),
                     static_cast<ItemId>(0xffffffff)),
            FlatMap64<double>::kEmptyKey);
}

// --- arena units -------------------------------------------------------------

TEST(ArenaTest, AlignmentAndReset) {
  Arena arena(1024);
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_NE(a, b);

  // Oversized requests get a dedicated block.
  void* big = arena.Allocate(1 << 16);
  std::memset(big, 0xab, 1 << 16);

  const size_t reserved = arena.BytesReserved();
  arena.Reset();
  // Reset rewinds but keeps blocks: same storage comes back.
  void* a2 = arena.Allocate(3, 1);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(arena.BytesReserved(), reserved);
}

TEST(ArenaTest, ArenaVectorGrowthPreservesContents) {
  Arena arena;
  ArenaVector<int> v(&arena, 2);
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i);
  // Zero initial capacity must still work (clamped internally).
  ArenaVector<int> w(&arena, 0);
  w.push_back(42);
  EXPECT_EQ(w[0], 42);
}

// --- TopK determinism + kernel equivalence -----------------------------------

TEST(TopKTest, TieOrderingDeterministicUnderShuffledInsertions) {
  // Regression for the ordering bug this PR fixes: equal-score entries used
  // to land in unspecified relative order (non-stable sort, strict `>`
  // comparator), so eviction and serialized lists differed across runs.
  // Now ties rank by ascending id, so any insertion order of the same
  // (id, score) set yields identical entries().
  // (Note what is NOT guaranteed: with a full table, a new tie is rejected
  // — "ties never evict" — so which ids a too-small table retains honestly
  // depends on arrival order. The determinism contract is about ordering
  // and eviction among admitted entries, tested with a table that holds
  // them all.)
  std::vector<int64_t> ids = {5, 9, 1, 7, 3, 8, 2, 6, 4, 10};
  std::vector<TopK<int64_t>::Entry> want;
  std::vector<TopK<int64_t>::Entry> want_rescored;

  Rng rng(123);
  for (int round = 0; round < 20; ++round) {
    // Fisher-Yates with the deterministic Rng — a fresh shuffle per round.
    for (size_t i = ids.size() - 1; i > 0; --i) {
      std::swap(ids[i], ids[rng.Uniform(i + 1)]);
    }
    TopK<int64_t> topk(ids.size());
    for (int64_t id : ids) topk.Update(id, 0.5);  // all-ties insertion
    const auto got = topk.entries();
    ASSERT_EQ(got.size(), ids.size());
    for (size_t r = 1; r < got.size(); ++r) {
      EXPECT_LT(got[r - 1].id, got[r].id);  // ties ordered by id
    }
    // Re-score to two tie groups (still shuffled order): ranking must be
    // (score desc, id asc) regardless of which update arrived when.
    for (int64_t id : ids) topk.Update(id, id % 2 == 0 ? 0.75 : 0.25);
    const auto rescored = topk.entries();
    if (round == 0) {
      want = got;
      want_rescored = rescored;
    } else {
      EXPECT_EQ(got, want) << "round " << round;
      EXPECT_EQ(rescored, want_rescored) << "round " << round;
    }
  }
}

TEST(TopKTest, MatchesLegacyOnRandomizedTraces) {
  // The sift kernel must be bit-identical to the (tie-break-fixed)
  // sort-per-update oracle on any trace: same entries, same thresholds,
  // same return values, including Erase and overflow eviction.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    TopK<int64_t> fast(8);
    LegacyTopK<int64_t> oracle(8);
    for (int step = 0; step < 3000; ++step) {
      const int64_t id = static_cast<int64_t>(1 + rng.Uniform(30));
      if (rng.Bernoulli(0.1)) {
        EXPECT_EQ(fast.Erase(id), oracle.Erase(id)) << "step " << step;
      } else {
        // Quantized scores force frequent exact ties.
        const double score = static_cast<double>(rng.Uniform(12)) / 8.0;
        EXPECT_EQ(fast.Update(id, score), oracle.Update(id, score))
            << "step " << step;
      }
      ASSERT_EQ(fast.entries(), oracle.entries()) << "step " << step;
      EXPECT_EQ(fast.Threshold(), oracle.Threshold()) << "step " << step;
      EXPECT_EQ(fast.size(), oracle.size());
    }
  }
}

// --- container-level parity: PracticalItemCf flat vs legacy ------------------

UserAction Act(UserId user, ItemId item, ActionType type, EventTime ts) {
  UserAction a;
  a.user = user;
  a.item = item;
  a.action = type;
  a.timestamp = ts;
  return a;
}

std::vector<UserAction> RandomActions(uint64_t seed, int num_actions,
                                      int num_users, int num_items) {
  Rng rng(seed);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kShare,
                               ActionType::kPurchase};
  std::vector<UserAction> actions;
  actions.reserve(static_cast<size_t>(num_actions));
  for (int i = 0; i < num_actions; ++i) {
    actions.push_back(
        Act(static_cast<UserId>(1 + rng.Uniform(num_users)),
            static_cast<ItemId>(1 + rng.Uniform(num_items)),
            kTypes[rng.Uniform(5)], Seconds(i * 40)));
  }
  return actions;
}

/// Runs one trace through both kernels and asserts every observable output
/// is bit-identical: counts, similarities, top-K entries (ids AND scores),
/// admission thresholds, prune decisions, stats, and query results.
void ExpectKernelParity(PracticalItemCf::Options options,
                        const std::vector<UserAction>& actions, int num_users,
                        int num_items) {
  options.use_flat_kernels = true;
  PracticalItemCf flat(options);
  options.use_flat_kernels = false;
  PracticalItemCf legacy(options);

  for (const auto& action : actions) {
    flat.ProcessAction(action);
    legacy.ProcessAction(action);
  }

  EXPECT_EQ(flat.stats().actions, legacy.stats().actions);
  EXPECT_EQ(flat.stats().pair_updates, legacy.stats().pair_updates);
  EXPECT_EQ(flat.stats().pair_updates_pruned,
            legacy.stats().pair_updates_pruned);
  EXPECT_EQ(flat.stats().pairs_pruned, legacy.stats().pairs_pruned);
  EXPECT_EQ(flat.counts().TrackedItems(), legacy.counts().TrackedItems());
  EXPECT_EQ(flat.counts().TrackedPairs(), legacy.counts().TrackedPairs());

  for (ItemId a = 1; a <= num_items; ++a) {
    EXPECT_EQ(flat.counts().ItemCount(a), legacy.counts().ItemCount(a))
        << "item " << a;
    for (ItemId b = a + 1; b <= num_items; ++b) {
      EXPECT_EQ(flat.counts().PairCount(a, b), legacy.counts().PairCount(a, b))
          << "pair (" << a << ", " << b << ")";
      EXPECT_EQ(flat.Similarity(a, b), legacy.Similarity(a, b))
          << "pair (" << a << ", " << b << ")";
      EXPECT_EQ(flat.EffectiveSimilarity(a, b), legacy.EffectiveSimilarity(a, b))
          << "pair (" << a << ", " << b << ")";
      EXPECT_EQ(flat.IsPruned(a, b), legacy.IsPruned(a, b))
          << "pair (" << a << ", " << b << ")";
    }
    const TopK<ItemId>* fl = flat.SimilarItems(a);
    const TopK<ItemId>* ll = legacy.SimilarItems(a);
    ASSERT_EQ(fl == nullptr, ll == nullptr) << "item " << a;
    if (fl != nullptr) {
      EXPECT_EQ(fl->entries(), ll->entries()) << "item " << a;
      EXPECT_EQ(fl->Threshold(), ll->Threshold()) << "item " << a;
    }
  }

  for (UserId u = 1; u <= num_users; ++u) {
    EXPECT_EQ(flat.RecentItemsOf(u), legacy.RecentItemsOf(u)) << "user " << u;
    for (ItemId i = 1; i <= num_items; ++i) {
      EXPECT_EQ(flat.UserRating(u, i), legacy.UserRating(u, i))
          << "user " << u << " item " << i;
    }
    EXPECT_EQ(flat.RecommendForUser(u, 5), legacy.RecommendForUser(u, 5))
        << "user " << u;
  }
}

TEST(FlatKernelParityTest, SeededRandomTrace) {
  PracticalItemCf::Options options;
  options.linked_time = Hours(4);
  options.top_k = 5;  // small lists so overflow eviction is exercised
  ExpectKernelParity(options, RandomActions(17, 4000, 25, 40), 25, 40);
}

TEST(FlatKernelParityTest, WindowedTraceWithExpiry) {
  PracticalItemCf::Options options;
  options.linked_time = Hours(2);
  options.session_length = Hours(1);
  options.window_sessions = 3;
  options.top_k = 4;
  // 40 s spacing over 4000 actions spans ~44 sessions, so plenty expire.
  ExpectKernelParity(options, RandomActions(23, 4000, 20, 24), 20, 24);
}

TEST(FlatKernelParityTest, AllTiesTrace) {
  // Adversarial all-ties workload: one action type and symmetric structure
  // give many exactly-equal similarities; list admission/eviction must make
  // identical tie decisions in both kernels.
  std::vector<UserAction> actions;
  EventTime ts = 0;
  for (UserId u = 1; u <= 16; ++u) {
    for (ItemId i = 1; i <= 12; ++i) {
      actions.push_back(Act(u, i, ActionType::kClick, ts));
      ts += Seconds(10);
    }
  }
  PracticalItemCf::Options options;
  options.linked_time = Days(30);
  options.top_k = 3;  // far smaller than the clique: constant tie-eviction
  ExpectKernelParity(options, actions, 16, 12);
}

TEST(FlatKernelParityTest, PruneEraseReopenTrace) {
  // Drives Algorithm 1 hard: tight lists + aggressive delta so pairs get
  // pruned (erasing stale list entries and reopening thresholds), then keep
  // arriving as skipped updates. Every prune decision, erase, and skip
  // counter must match across kernels.
  PracticalItemCf::Options options;
  options.linked_time = Hours(6);
  options.top_k = 3;
  options.enable_pruning = true;
  options.hoeffding_delta = 0.4;
  const auto actions = RandomActions(31, 6000, 12, 30);
  ExpectKernelParity(options, actions, 12, 30);

  // The trace must actually prune, or the test proves nothing.
  options.use_flat_kernels = true;
  PracticalItemCf probe(options);
  for (const auto& action : actions) probe.ProcessAction(action);
  EXPECT_GT(probe.stats().pairs_pruned, 0);
  EXPECT_GT(probe.stats().pair_updates_pruned, 0);
}

// --- sharded executor: legacy kernel parity (TSan workload) ------------------

TEST(FlatKernelParityTest, ParallelLegacyKernelMatchesFlat) {
  // The sharded executor in legacy-kernel mode must drain to the same state
  // as flat-kernel mode. Parity configuration (no overflow, no pruning), so
  // state is a pure commutative sum; dyadic action weights make those sums
  // exact in any interleaving, hence exact equality across modes. Runs
  // both multi-threaded pipelines -> part of the `concurrent` TSan label.
  const int kUsers = 16, kItems = 20;
  const auto actions = RandomActions(41, 1500, kUsers, kItems);

  ParallelItemCf::Options options;
  options.cf.linked_time = Days(30);
  options.cf.window_sessions = 0;
  options.cf.enable_pruning = false;
  options.cf.top_k = kItems + 8;
  options.user_shards = 4;
  options.pair_shards = 4;
  options.batch_size = 7;
  options.queue_capacity = 4;
  options.count_stripes = 8;
  options.list_stripes = 8;

  options.cf.use_flat_kernels = true;
  ParallelItemCf flat(options);
  options.cf.use_flat_kernels = false;
  ParallelItemCf legacy(options);

  flat.ProcessActions(actions);
  legacy.ProcessActions(actions);
  flat.Drain();
  legacy.Drain();

  EXPECT_EQ(flat.stats().actions, legacy.stats().actions);
  EXPECT_EQ(flat.stats().pair_updates, legacy.stats().pair_updates);
  for (ItemId a = 1; a <= kItems; ++a) {
    for (ItemId b = a + 1; b <= kItems; ++b) {
      EXPECT_EQ(flat.Similarity(a, b), legacy.Similarity(a, b))
          << "pair (" << a << ", " << b << ")";
      EXPECT_EQ(flat.EffectiveSimilarity(a, b),
                legacy.EffectiveSimilarity(a, b))
          << "pair (" << a << ", " << b << ")";
    }
  }
  for (UserId u = 1; u <= kUsers; ++u) {
    EXPECT_EQ(flat.RecentItemsOf(u), legacy.RecentItemsOf(u)) << "user " << u;
    for (ItemId i = 1; i <= kItems; ++i) {
      EXPECT_EQ(flat.UserRating(u, i), legacy.UserRating(u, i))
          << "user " << u << " item " << i;
    }
    // Recommendations use racy-snapshot list membership only for candidate
    // generation; in the no-overflow configuration membership is
    // deterministic, and scores recompute from drained counts.
    EXPECT_EQ(flat.RecommendForUser(u, 5), legacy.RecommendForUser(u, 5))
        << "user " << u;
  }

  // Mirror-export walk sees the same (item, total) set in both modes.
  FlatMap64<double> flat_totals, legacy_totals;
  flat.VisitItemCounts(
      [&](ItemId item, double total) { flat_totals[PackItem(item)] = total; });
  legacy.VisitItemCounts([&](ItemId item, double total) {
    legacy_totals[PackItem(item)] = total;
  });
  ASSERT_EQ(flat_totals.size(), legacy_totals.size());
  flat_totals.ForEach([&](uint64_t key, double total) {
    const double* other = legacy_totals.Find(key);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(total, *other);
  });
}

}  // namespace
}  // namespace tencentrec::core
