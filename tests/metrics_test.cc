#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/metrics.h"

namespace tencentrec {
namespace {

TEST(MetricsTest, CounterSumsAcrossThreads) {
  SetMetricsEnabled(true);
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(MetricsTest, HistogramConcurrentRecordMergesStripes) {
  SetMetricsEnabled(true);
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      // Each thread records a distinct deterministic value pattern so the
      // merged snapshot's count/sum/min/max are all exactly checkable.
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + (i % 7));
      }
    });
  }
  for (auto& t : threads) t.join();

  auto snap = h.Snap();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.min, 0u);  // thread 0 records 0..6
  EXPECT_EQ(snap.max, 7006u);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);

  h.Reset();
  EXPECT_EQ(h.Snap().count, 0u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  SetMetricsEnabled(true);
  MetricRegistry reg;
  Counter* c1 = reg.GetCounter("metrics_test.counter");
  Counter* c2 = reg.GetCounter("metrics_test.counter");
  EXPECT_EQ(c1, c2);
  LatencyHistogram* h = reg.GetHistogram("metrics_test.hist");
  EXPECT_NE(h, nullptr);
  c1->Add(5);
  h->Record(100);

  // Reset zeroes in place: the cached pointers stay valid and writable.
  reg.Reset();
  EXPECT_EQ(c1->Value(), 0u);
  EXPECT_EQ(h->Snap().count, 0u);
  c1->Add(1);
  EXPECT_EQ(reg.GetCounter("metrics_test.counter")->Value(), 1u);

  auto counters = reg.Counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "metrics_test.counter");
}

TEST(MetricsTest, RegistryConcurrentResolutionAndWrites) {
  SetMetricsEnabled(true);
  MetricRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Contend on name resolution and on the instruments themselves.
      Counter* c = reg.GetCounter("shared.counter");
      LatencyHistogram* h = reg.GetHistogram("shared.hist");
      for (int i = 0; i < 10000; ++i) {
        c->Add();
        h->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("shared.counter")->Value(), 80000u);
  EXPECT_EQ(reg.GetHistogram("shared.hist")->Snap().count, 80000u);
}

TEST(MetricsTest, KillSwitchStopsObservations) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("switch.counter");
  SetMetricsEnabled(false);
  c->Add(100);
  EXPECT_EQ(c->Value(), 0u);
  SetMetricsEnabled(true);
  c->Add(2);
  EXPECT_EQ(c->Value(), 2u);
}

TEST(MetricsTest, ScopedLatencyTimerRecordsOnce) {
  SetMetricsEnabled(true);
  LatencyHistogram h;
  { ScopedLatencyTimer timer(&h); }
  EXPECT_EQ(h.Snap().count, 1u);
  { ScopedLatencyTimer timer(nullptr); }  // null target: no-op, no crash
}

}  // namespace
}  // namespace tencentrec
